"""The example scripts must keep running (at tiny scales).

Each example is imported and its ``main`` invoked with a small scale so
the whole set finishes in test time.  ssd_vs_main_memory runs the full
default scales and is exercised separately by the benchmarks, so only a
smoke import is done for it here.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_with_argv(module, argv, capsys):
    old = sys.argv
    sys.argv = argv
    try:
        module.main()
    finally:
        sys.argv = old
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_with_argv(load_example("quickstart"), ["quickstart", "0.08"], capsys)
    assert "buffering simulation" in out
    assert "MB cache" in out


def test_trace_collection_pipeline(tmp_path, capsys):
    module = load_example("trace_collection_pipeline")
    out = run_with_argv(
        module, ["trace_collection_pipeline", str(tmp_path)], capsys
    )
    assert "decode round-trip: OK" in out
    assert (tmp_path / "ccm.trace").exists()


def test_venus_buffering_study(capsys):
    module = load_example("venus_buffering_study")
    out = run_with_argv(module, ["venus_buffering_study", "0.08"], capsys)
    assert "Figure 6" in out and "Figure 8" in out
    assert "idle seconds, 8K cache blocks" in out


def test_batch_queue_tradeoff(capsys):
    module = load_example("batch_queue_tradeoff")
    out = run_with_argv(module, ["batch_queue_tradeoff"], capsys)
    assert "loaded machine" in out
    assert "wins" in out


def test_physical_layout_study(capsys):
    module = load_example("physical_layout_study")
    out = run_with_argv(module, ["physical_layout_study", "0.08"], capsys)
    assert "contiguous" in out and "fragmented" in out
    assert "device-seconds" in out


def test_ssd_vs_main_memory_importable():
    module = load_example("ssd_vs_main_memory")
    assert callable(module.main)
