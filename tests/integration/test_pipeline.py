"""End-to-end pipeline integration.

The full data path of the paper, in one test file:

  application model -> library hooks -> procstat packets -> packet log
  on disk -> reconstruction -> ASCII trace file -> decode -> analysis &
  buffering simulation

with cross-checks that every stage preserves the stream.
"""

import numpy as np
import pytest

from repro.analysis.summary import summarize_table2, trace_table1
from repro.fslayout import analyze_physical, translate_trace
from repro.sim import SimConfig, simulate, ssd_cache
from repro.sim.procmodel import relabel_copies
from repro.trace import (
    ProcstatCollector,
    dump_packets,
    load_packets,
    read_comments,
    read_trace_array,
    reconstruct_array,
    write_trace_array,
)
from repro.trace.validate import validate_array
from repro.util.units import MB
from repro.workloads import generate_workload, model_for


@pytest.fixture(scope="module")
def venus():
    return generate_workload("venus", scale=0.1)


class TestFullPipeline:
    def test_generate_collect_persist_decode_simulate(self, tmp_path, venus):
        # 1. run the model under procstat batching
        packets = []
        collector = ProcstatCollector(packets.append, max_events_per_packet=128)
        model = model_for("venus", scale=0.1)
        model.generate(collector=collector)

        # 2. persist and reload the packet log
        packet_log = tmp_path / "venus.packets"
        dump_packets(packet_log, packets)
        rebuilt = reconstruct_array(list(load_packets(packet_log)))

        # 3. the reconstructed stream matches the directly generated one
        np.testing.assert_array_equal(rebuilt.offset, venus.trace.offset)
        np.testing.assert_array_equal(rebuilt.length, venus.trace.length)
        np.testing.assert_array_equal(
            rebuilt.process_clock, venus.trace.process_clock
        )

        # 4. write the standard trace file and decode it back
        trace_path = tmp_path / "venus.trace"
        write_trace_array(
            trace_path,
            rebuilt,
            header_comments=[c.text for c in venus.comments],
        )
        decoded = read_trace_array(trace_path)
        assert validate_array(decoded).ok
        np.testing.assert_array_equal(decoded.offset, venus.trace.offset)
        assert len(read_comments(trace_path)) == len(venus.comments)

        # 5. analysis on the decoded trace matches analysis on the original
        direct = trace_table1("venus", venus.trace)
        via_file = trace_table1("venus", decoded)
        assert via_file.total_io_mb == pytest.approx(direct.total_io_mb)
        assert via_file.n_ios == direct.n_ios

        # 6. the decoded trace drives the simulator to the same outcome
        config = SimConfig(cache=ssd_cache(256 * MB))
        r_direct = simulate(relabel_copies(venus.trace, 2), config)
        r_file = simulate(relabel_copies(decoded, 2), config)
        assert r_file.idle_seconds == pytest.approx(
            r_direct.idle_seconds, abs=0.05
        )
        assert r_file.cache.hit_fraction == pytest.approx(
            r_direct.cache.hit_fraction, abs=0.01
        )

    def test_physical_translation_round_trips_through_format(
        self, tmp_path, venus
    ):
        # logical -> physical -> merged stream -> trace file -> decode
        translation = translate_trace(
            venus.trace[:500], max_extent_blocks=256
        )
        merged = translation.merged()
        path = tmp_path / "venus.phys.trace"
        write_trace_array(path, merged)
        back = read_trace_array(path)
        assert len(back) == len(merged)
        np.testing.assert_array_equal(back.offset, merged.offset)
        np.testing.assert_array_equal(back.record_type, merged.record_type)
        # logical and physical records distinguishable after round trip
        assert back.is_logical.sum() == 500
        report = analyze_physical(translation)
        assert report.n_physical == int((~back.is_logical).sum())

    def test_table2_stable_across_seeds(self):
        rows = [
            summarize_table2(generate_workload("ccm", scale=0.1, seed=s))
            for s in (1, 2, 3)
        ]
        ratios = [r.rw_data_ratio for r in rows]
        assert max(ratios) - min(ratios) < 0.05
        rates = [r.read_mb_per_sec + r.write_mb_per_sec for r in rows]
        assert max(rates) / min(rates) < 1.05


class TestSimulationConservation:
    def test_busy_time_equals_cpu_demand(self, venus):
        traces = relabel_copies(venus.trace, 2)
        result = simulate(traces, SimConfig(cache=ssd_cache(256 * MB)))
        demand = 2 * venus.trace.cpu_seconds()
        # busy CPU == the traces' compute demand plus SSD copy penalties
        assert result.busy_seconds >= demand * 0.999
        assert result.busy_seconds < demand * 1.2

    def test_disk_write_traffic_conserved(self, venus):
        # With write-behind, every written byte eventually reaches disk.
        traces = relabel_copies(venus.trace, 2)
        result = simulate(traces, SimConfig(cache=ssd_cache(256 * MB)))
        written_mb = 2 * venus.trace.write_bytes / MB
        assert result.disk_write_rate.total == pytest.approx(
            written_mb, rel=0.02
        )

    def test_disk_read_bounded_by_demand_plus_prefetch(self, venus):
        traces = relabel_copies(venus.trace, 2)
        result = simulate(traces, SimConfig())
        demand_mb = 2 * venus.trace.read_bytes / MB
        assert result.disk_read_rate.total <= demand_mb * 1.5
