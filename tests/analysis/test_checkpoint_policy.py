"""Checkpoint-interval policy: analytic model vs failure injection."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.checkpoint_policy import (
    CheckpointParams,
    checkpoint_cost_seconds,
    expected_overhead_fraction,
    measured_overhead_fraction,
    optimal_interval_seconds,
    optimal_iterations,
    paper_checkpoint_example,
    simulate_run,
    sweep_intervals,
)
from repro.util.rng import make_rng


def params(cost=4.0, mtbf=3600.0, work=1800.0):
    return CheckpointParams(checkpoint_cost_s=cost, mtbf_s=mtbf, work_s=work)


class TestAnalyticModel:
    def test_optimal_interval_formula(self):
        p = params(cost=2.0, mtbf=10_000.0)
        assert optimal_interval_seconds(p) == pytest.approx(math.sqrt(40_000.0))

    def test_optimum_is_a_minimum(self):
        p = params()
        tau = optimal_interval_seconds(p)
        at = expected_overhead_fraction(tau, p)
        assert expected_overhead_fraction(tau / 3, p) > at
        assert expected_overhead_fraction(tau * 3, p) > at

    def test_overhead_terms(self):
        p = params(cost=10.0, mtbf=1000.0)
        # checkpoint term dominates at tiny intervals; rework at huge ones
        assert expected_overhead_fraction(1.0, p) == pytest.approx(
            10.0 + 1 / 2000, rel=1e-6
        )
        assert expected_overhead_fraction(10_000.0, p) > 4.9

    def test_optimal_iterations(self):
        p = params(cost=2.0, mtbf=3200.0)  # tau* = sqrt(12800) ~ 113 s
        assert optimal_iterations(p, iteration_s=20.0) == 6
        assert optimal_iterations(p, iteration_s=1e6) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            params(cost=0.0)
        with pytest.raises(ValueError):
            params(mtbf=-1.0)
        with pytest.raises(ValueError):
            params(work=0.0)
        with pytest.raises(ValueError):
            expected_overhead_fraction(0.0, params())
        with pytest.raises(ValueError):
            optimal_iterations(params(), 0.0)

    def test_checkpoint_cost(self):
        assert checkpoint_cost_seconds(40.0) == pytest.approx(40 / 9.6)
        # write-behind makes checkpoints ~free for the application
        assert checkpoint_cost_seconds(40.0, write_behind=True) < 0.1
        with pytest.raises(ValueError):
            checkpoint_cost_seconds(-1.0)


class TestMonteCarlo:
    def test_no_failures_is_pure_overhead(self):
        # Effectively infinite MTBF: elapsed = work + #checkpoints * cost
        p = params(cost=5.0, mtbf=1e12, work=100.0)
        rng = make_rng(0)
        elapsed = simulate_run(25.0, p, rng)
        assert elapsed == pytest.approx(100.0 + 4 * 5.0)

    def test_failures_add_rework(self):
        p = params(cost=1.0, mtbf=50.0, work=200.0)
        rng = make_rng(1)
        lucky = simulate_run(10.0, params(cost=1.0, mtbf=1e12, work=200.0), rng)
        unlucky = measured_overhead_fraction(10.0, p, n_runs=50, seed=2)
        assert unlucky > (lucky - 200.0) / 200.0

    def test_monte_carlo_matches_analytic_near_optimum(self):
        p = params(cost=4.0, mtbf=2000.0, work=2000.0)
        tau = optimal_interval_seconds(p)
        analytic = expected_overhead_fraction(tau, p)
        measured = measured_overhead_fraction(tau, p, n_runs=300, seed=3)
        assert measured == pytest.approx(analytic, abs=0.03)

    def test_sweep_minimum_near_optimal(self):
        p = params(cost=4.0, mtbf=2000.0, work=2000.0)
        tau = optimal_interval_seconds(p)
        grid = [tau / 8, tau / 2, tau, tau * 2, tau * 8]
        rows = sweep_intervals(p, grid, n_runs=150, seed=4)
        measured = [m for _, _, m in rows]
        best = grid[measured.index(min(measured))]
        assert tau / 3 < best < tau * 3  # minimum lands near tau*

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            simulate_run(0.0, params(), make_rng(0))

    @settings(max_examples=20, deadline=None)
    @given(
        cost=st.floats(0.5, 20.0),
        mtbf=st.floats(100.0, 10_000.0),
        interval=st.floats(5.0, 500.0),
    )
    def test_elapsed_always_at_least_work(self, cost, mtbf, interval):
        p = CheckpointParams(checkpoint_cost_s=cost, mtbf_s=mtbf, work_s=300.0)
        elapsed = simulate_run(interval, p, make_rng(42))
        assert elapsed >= p.work_s


class TestPaperExample:
    def test_example_checkpoints_conservatively(self):
        p = paper_checkpoint_example()
        tau = optimal_interval_seconds(p)
        # The paper's program checkpointed every 20 s; the
        # failure-optimal interval at an 8 h MTBF is minutes, not
        # seconds -- it checkpointed conservatively, trading bandwidth
        # (the 2 MB/s it quotes) for safety.
        assert tau > 60.0
        overhead_20s = expected_overhead_fraction(20.0, p)
        overhead_opt = expected_overhead_fraction(tau, p)
        assert overhead_20s > 2 * overhead_opt
