"""Burst segmentation and statistics."""

import numpy as np
import pytest

from repro.analysis.bursts import analyze_bursts, detect_bursts
from repro.analysis.rates import data_rate_series
from repro.util.timeseries import RateSeries
from repro.workloads import generate_workload


def series(values, bin_width=1.0):
    arr = np.asarray(values, dtype=float)
    return RateSeries(np.arange(arr.size) * bin_width, arr, bin_width)


class TestDetection:
    def test_single_burst(self):
        s = series([0, 0, 10, 12, 8, 0, 0])
        bursts = detect_bursts(s)
        assert len(bursts) == 1
        b = bursts[0]
        assert b.start_s == 2.0
        assert b.end_s == 5.0
        assert b.duration_s == 3.0
        assert b.peak == 12.0
        assert b.total == pytest.approx(30.0)

    def test_multiple_bursts_and_spacing(self):
        s = series([10, 0, 0, 10, 0, 0, 10, 0, 0])
        report = analyze_bursts(s)
        assert report.n_bursts == 3
        assert report.mean_spacing_s == pytest.approx(3.0)
        assert report.spacing_cv == pytest.approx(0.0)
        assert report.evenly_spaced

    def test_burst_at_end_closed(self):
        s = series([0, 0, 10])
        bursts = detect_bursts(s)
        assert len(bursts) == 1
        assert bursts[0].end_s == 3.0

    def test_threshold_fraction(self):
        s = series([1, 1, 10, 1, 1])
        assert len(detect_bursts(s, threshold_fraction=0.5)) == 1
        # at a 5% threshold, everything is one long burst
        assert len(detect_bursts(s, threshold_fraction=0.05)) == 1
        assert detect_bursts(s, threshold_fraction=0.05)[0].duration_s == 5.0

    def test_empty_and_flat(self):
        assert detect_bursts(series([])) == []
        assert detect_bursts(series([0, 0, 0])) == []
        report = analyze_bursts(series([0, 0]))
        assert report.n_bursts == 0
        assert not report.evenly_spaced

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            detect_bursts(series([1.0]), threshold_fraction=0.0)
        with pytest.raises(ValueError):
            detect_bursts(series([1.0]), threshold_fraction=1.0)


class TestReportMetrics:
    def test_duty_and_weight_fractions(self):
        s = series([0, 20, 0, 0])  # one 1-s burst in 4 s
        report = analyze_bursts(s)
        assert report.duty_fraction == pytest.approx(0.25)
        assert report.burst_weight_fraction == pytest.approx(1.0)
        assert report.mean_burst_rate == pytest.approx(20.0)

    def test_uneven_spacing_detected(self):
        s = series([10, 0, 10, 0, 0, 0, 0, 0, 10, 0])
        report = analyze_bursts(s)
        assert report.n_bursts == 3
        assert report.spacing_cv > 0.4
        assert not report.evenly_spaced


class TestOnVenus:
    def test_venus_bursts_match_cycles(self):
        venus = generate_workload("venus", scale=0.2)
        rate = data_rate_series(venus.trace, clock="cpu")
        report = analyze_bursts(rate)
        # one burst per cycle (8 cycles at scale 0.2)
        assert report.n_bursts == pytest.approx(8, abs=1)
        assert report.evenly_spaced
        assert report.mean_spacing_s == pytest.approx(9.5, abs=1.0)
        # almost all bytes move inside the bursts, which cover under
        # ~60% of the time
        assert report.burst_weight_fraction > 0.95
        assert report.duty_fraction < 0.6
