"""Sequentiality, per-file stats, classification, cycles, Amdahl."""

import numpy as np
import pytest

from repro.analysis.amdahl import (
    amdahl_balance,
    amdahl_io_mb_per_sec,
    paper_swap_example,
)
from repro.analysis.classify import (
    PAPER_CHECKPOINT_EXAMPLE_MB_PER_SEC,
    PAPER_REQUIRED_EXAMPLE_MB_PER_SEC,
    PAPER_SWAP_EXAMPLE_MB_PER_SEC,
    IOClass,
    classify_file,
    classify_trace,
)
from repro.analysis.cycles import (
    analyze_cycles,
    cycle_similarity,
    detect_period_bins,
    peak_spacing_regularity,
)
from repro.analysis.perfile import (
    large_file_io_fraction,
    per_file_stats,
    split_large_small,
    unique_sizes_per_file,
)
from repro.analysis.rates import data_rate_series
from repro.analysis.sequentiality import (
    analyze_file_concentration,
    analyze_sequentiality,
)
from repro.trace.array import TraceArray
from repro.util.timeseries import RateSeries
from repro.workloads import generate_workload


@pytest.fixture(scope="module")
def venus():
    return generate_workload("venus", scale=0.2)


@pytest.fixture(scope="module")
def gcm():
    return generate_workload("gcm", scale=0.2)


class TestSequentiality:
    def test_venus_highly_sequential(self, venus):
        report = analyze_sequentiality(venus.trace)
        assert report.sequential_fraction > 0.9
        assert report.same_size_fraction > 0.95
        assert report.dominant_size == 456 * 1024

    def test_empty_trace(self):
        report = analyze_sequentiality(TraceArray.empty())
        assert report.n_ios == 0
        assert report.sequential_fraction == 0.0

    def test_random_access_not_sequential(self):
        rng = np.random.default_rng(0)
        offs = rng.integers(0, 10**6, size=200) * 1024
        trace = TraceArray.from_columns(
            offset=offs,
            length=np.full(200, 1024),
            start_time=np.arange(200) * 10,
            file_id=np.ones(200),
            process_clock=np.arange(200),
            process_id=np.ones(200),
        )
        report = analyze_sequentiality(trace)
        assert report.sequential_fraction < 0.05
        assert report.same_size_fraction > 0.9  # sizes still regular

    def test_concentration(self, venus):
        report = analyze_file_concentration(venus.trace)
        # accesses go overwhelmingly to the six data files
        assert report.files_for_90_percent <= 6


class TestPerFile:
    def test_stats_conserve_totals(self, venus):
        stats = per_file_stats(venus.trace)
        assert sum(s.total_bytes for s in stats.values()) == venus.trace.total_bytes
        assert sum(s.n_ios for s in stats.values()) == len(venus.trace)

    def test_large_small_split(self, venus):
        stats = per_file_stats(venus.trace)
        large, small = split_large_small(stats)
        # the six data files (and possibly the 2 MB results file)
        assert 6 <= len(large) <= 7
        assert small  # the config file is small

    def test_large_files_dominate_bytes(self, venus):
        assert large_file_io_fraction(venus.trace) > 0.99

    def test_unique_sizes_regular(self, venus):
        sizes = unique_sizes_per_file(venus.trace)
        stats = per_file_stats(venus.trace)
        large, _ = split_large_small(stats)
        for s in large:
            assert sizes[s.file_id] == 1  # one constant request size


class TestClassification:
    def test_classify_file_rules(self):
        reads_only = classify_file(
            np.array([0, 100, 200]), np.array([False, False, False])
        )
        assert reads_only == IOClass.REQUIRED
        append_only = classify_file(
            np.array([0, 100, 200]), np.array([True, True, True])
        )
        assert append_only == IOClass.REQUIRED
        rewound = classify_file(
            np.array([0, 100, 0, 100]), np.array([True, True, True, True])
        )
        assert rewound == IOClass.CHECKPOINT
        mixed = classify_file(np.array([0, 0]), np.array([True, False]))
        assert mixed == IOClass.SWAP

    def test_venus_swap_dominated(self, venus):
        report = classify_trace(venus.trace, venus.cpu_seconds)
        assert report.dominant_class == IOClass.SWAP
        assert report.fraction_of_bytes(IOClass.SWAP) > 0.99

    def test_gcm_required_only(self, gcm):
        report = classify_trace(gcm.trace, gcm.cpu_seconds)
        assert report.dominant_class == IOClass.REQUIRED
        assert report.breakdown[IOClass.SWAP].n_ios == 0

    def test_ccm_has_checkpoints(self):
        ccm = generate_workload("ccm", scale=0.5)
        report = classify_trace(ccm.trace, ccm.cpu_seconds)
        assert report.breakdown[IOClass.CHECKPOINT].n_files == 1

    def test_paper_class_rate_ordering(self, venus, gcm):
        # The paper's ordering: swap >> checkpoint > required rates.
        assert (
            PAPER_SWAP_EXAMPLE_MB_PER_SEC
            > PAPER_CHECKPOINT_EXAMPLE_MB_PER_SEC
            > PAPER_REQUIRED_EXAMPLE_MB_PER_SEC
        )
        swap_rate = classify_trace(
            venus.trace, venus.cpu_seconds
        ).breakdown[IOClass.SWAP].mb_per_sec
        req_rate = classify_trace(gcm.trace, gcm.cpu_seconds).breakdown[
            IOClass.REQUIRED
        ].mb_per_sec
        assert swap_rate > 10 * req_rate


class TestCycles:
    def test_venus_period_detected(self, venus):
        rs = data_rate_series(venus.trace, clock="cpu")
        report = analyze_cycles(rs)
        assert report.is_cyclic
        assert report.period_seconds == pytest.approx(9.5, abs=1.5)
        assert report.cycle_similarity > 0.7

    def test_peak_spacing_even(self, venus):
        rs = data_rate_series(venus.trace, clock="cpu")
        assert peak_spacing_regularity(rs) < 0.5

    def test_flat_series_no_cycle(self):
        rs = RateSeries(np.arange(50.0), np.ones(50), 1.0)
        assert not analyze_cycles(rs).is_cyclic

    def test_short_series_no_cycle(self):
        rs = RateSeries(np.arange(4.0), np.array([1.0, 2, 1, 2]), 1.0)
        assert not analyze_cycles(rs).is_cyclic

    def test_detect_period_bins_synthetic(self):
        t = np.arange(200)
        rates = np.where(t % 8 < 2, 10.0, 0.0)
        rs = RateSeries(t.astype(float), rates, 1.0)
        ac = rs.autocorrelation(max_lag=100)
        assert detect_period_bins(ac) == 8

    def test_cycle_similarity_identical_windows(self):
        values = np.tile(np.array([0.0, 5.0, 1.0, 0.0]), 6)
        assert cycle_similarity(values, 4) == pytest.approx(1.0)
        assert cycle_similarity(values[:4], 4) == 0.0


class TestAmdahl:
    def test_prescribed_rate(self):
        # 200 MIPS -> 200 Mbit/s = 25 MB/s (decimal) ~ 23.8 binary MB/s
        assert amdahl_io_mb_per_sec(200) == pytest.approx(23.84, abs=0.1)

    def test_balance(self):
        assert amdahl_balance(23.84, 200) == pytest.approx(1.0, abs=0.01)
        assert amdahl_balance(0.0, 200) == 0.0

    def test_paper_example(self):
        est = paper_swap_example()
        assert est.mb_per_sec == pytest.approx(24.0)
        assert est.amdahl_mb_per_sec == pytest.approx(25.0)
        # "quite close to Amdahl's metric"
        assert est.mb_per_sec / est.amdahl_mb_per_sec == pytest.approx(
            0.96, abs=0.01
        )
