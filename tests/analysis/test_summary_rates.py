"""Table summaries and rate series."""

import numpy as np
import pytest

from repro.analysis.rates import data_rate_series, rate_series_csv, request_rate_series
from repro.analysis.summary import (
    extrapolate_table1,
    scale_factor_to_full,
    summarize_table1,
    summarize_table2,
    trace_table1,
)
from repro.trace.array import TraceArray
from repro.workloads import generate_workload


@pytest.fixture(scope="module")
def venus():
    return generate_workload("venus", scale=0.2)


class TestSummaries:
    def test_table1_row(self, venus):
        row = summarize_table1(venus)
        assert row.name == "venus"
        assert row.n_ios == len(venus.trace)
        assert row.total_io_mb == pytest.approx(
            venus.trace.total_bytes / 2**20
        )
        assert row.mb_per_sec == pytest.approx(
            row.total_io_mb / row.running_seconds
        )
        assert row.avg_io_mb == pytest.approx(row.total_io_mb / row.n_ios)

    def test_table2_row(self, venus):
        row = summarize_table2(venus)
        assert row.read_mb_per_sec + row.write_mb_per_sec == pytest.approx(
            summarize_table1(venus).mb_per_sec
        )
        assert row.rw_data_ratio == pytest.approx(1.8, rel=0.1)

    def test_extrapolation_preserves_rates(self, venus):
        row = summarize_table1(venus)
        factor = scale_factor_to_full(venus)
        assert factor > 1.0  # generated at scale 0.2
        full = extrapolate_table1(row, factor)
        assert full.mb_per_sec == row.mb_per_sec
        assert full.total_io_mb == pytest.approx(row.total_io_mb * factor)
        assert full.running_seconds == pytest.approx(379.0, rel=0.15)

    def test_trace_table1_from_raw_trace(self, venus):
        row = trace_table1("venus", venus.trace, venus.data_size_bytes)
        assert row.n_ios == len(venus.trace)
        assert row.mb_per_sec == pytest.approx(
            summarize_table1(venus).mb_per_sec
        )

    def test_empty_trace_rows(self):
        empty = TraceArray.empty()
        row = trace_table1("x", empty)
        assert row.n_ios == 0
        assert row.mb_per_sec == 0.0
        assert row.avg_io_mb == 0.0


class TestRateSeries:
    def test_cpu_clock_series_matches_totals(self, venus):
        rs = data_rate_series(venus.trace, clock="cpu")
        assert rs.total == pytest.approx(venus.trace.total_bytes / 2**20)

    def test_directions_sum(self, venus):
        both = data_rate_series(venus.trace)
        reads = data_rate_series(venus.trace, direction="read")
        writes = data_rate_series(venus.trace, direction="write")
        assert reads.total + writes.total == pytest.approx(both.total)

    def test_venus_is_bursty(self, venus):
        rs = data_rate_series(venus.trace, clock="cpu")
        assert rs.burstiness() > 1.5
        assert rs.peak > 80  # Figure 3 peaks near 95 MB/s

    def test_wall_clock_series(self, venus):
        rs = data_rate_series(venus.trace, clock="wall")
        # wall time is longer than CPU time (disk stalls), so mean lower
        cpu = data_rate_series(venus.trace, clock="cpu")
        assert rs.duration > cpu.duration
        assert rs.total == pytest.approx(cpu.total)

    def test_request_rate_series(self, venus):
        rs = request_rate_series(venus.trace, clock="cpu")
        assert rs.total == pytest.approx(len(venus.trace))

    def test_cpu_series_rejects_multi_process(self, venus):
        two = TraceArray.concatenate(
            [venus.trace, venus.trace.with_process_id(2)]
        ).sorted_by_start()
        with pytest.raises(ValueError):
            data_rate_series(two, clock="cpu")
        # wall clock is fine
        data_rate_series(two, clock="wall")

    def test_csv_rendering(self, venus):
        rs = data_rate_series(venus.trace, clock="cpu")
        csv = rate_series_csv(rs)
        lines = csv.splitlines()
        assert lines[0] == "seconds,mb_per_sec"
        assert len(lines) == rs.rates.size + 1
        t, r = lines[1].split(",")
        assert float(t) == pytest.approx(rs.times[0])
