"""Suite-wide pytest hooks.

``--update-golden`` regenerates the committed JSON fixtures under
``tests/integration/golden/`` instead of comparing against them.  Use it
after an intentional change to the workload models or simulator::

    PYTHONPATH=src python -m pytest tests/integration/test_golden_tables.py \\
        --update-golden

then review and commit the diff like any other code change.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite golden JSON fixtures from current outputs",
    )


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")
