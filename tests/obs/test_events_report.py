"""The JSONL event sink (bounded buffering, batched flush) and reporting."""

import json

import pytest

from repro.obs.events import JsonlEventSink, read_events
from repro.obs.registry import MetricsRegistry
from repro.obs.report import metrics_to_jsonl, render_report


class TestJsonlEventSink:
    def test_buffers_until_full_then_flushes_batch(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlEventSink(path, buffer_events=3)
        sink.emit("a")
        sink.emit("b")
        assert path.read_text() == ""  # still buffered
        assert sink.flushes == 0
        sink.emit("c")  # buffer full -> one batched write
        assert sink.flushes == 1
        assert len(path.read_text().splitlines()) == 3
        sink.close()

    def test_close_flushes_remainder(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlEventSink(path, buffer_events=100) as sink:
            sink.emit("only")
        assert sink.flushes == 1
        assert [e["kind"] for e in read_events(path)] == ["only"]

    def test_seq_numbers_are_monotone_across_flushes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlEventSink(path, buffer_events=2) as sink:
            for i in range(5):
                sink.emit("e", i=i)
        events = read_events(path)
        assert [e["seq"] for e in events] == [0, 1, 2, 3, 4]
        assert sink.events_emitted == 5
        assert sink.flushes == 3  # 2 full batches + the close flush

    def test_closed_sink_rejects_emits(self, tmp_path):
        sink = JsonlEventSink(tmp_path / "e.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(RuntimeError):
            sink.emit("late")

    def test_rejects_bad_buffer_size(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlEventSink(tmp_path / "e.jsonl", buffer_events=0)

    def test_fields_round_trip(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with JsonlEventSink(path) as sink:
            sink.emit("span", name="x", seconds=0.25, label="p1")
        (event,) = read_events(path)
        assert event == {
            "seq": 0, "kind": "span", "name": "x",
            "seconds": 0.25, "label": "p1",
        }


class TestRenderReport:
    def test_empty_registry_renders_placeholder(self):
        text = render_report(MetricsRegistry(), title="t")
        assert "no metrics recorded" in text

    def test_groups_by_dotted_prefix(self):
        reg = MetricsRegistry()
        reg.counter("sim.cache.hits").inc(10)
        reg.counter("sim.disk.requests").inc(3)
        reg.gauge("sim.cache.depth").set_max(7)
        text = render_report(reg, title="== metrics ==")
        assert "== metrics ==" in text
        assert "sim.cache" in text and "sim.disk" in text
        # grouped: the cache counter and gauge share a table
        cache_section = text.split("sim.disk")[0]
        assert "sim.cache.hits" in cache_section
        assert "sim.cache.depth" in cache_section
        assert "(peak 7)" in cache_section

    def test_histogram_summarized_inline(self):
        reg = MetricsRegistry()
        reg.histogram("exec.runner.point_s").observe(2.0)
        text = render_report(reg)
        assert "n=1" in text and "mean=2" in text


class TestMetricsToJsonl:
    def test_dumps_every_instrument_kind(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.gauge("g").set(2)
        reg.histogram("h").observe(4)
        path = tmp_path / "m.jsonl"
        assert metrics_to_jsonl(reg, path) == 3
        rows = {r["metric"]: r for r in map(json.loads, path.read_text().splitlines())}
        assert rows["c"] == {"metric": "c", "type": "counter", "value": 5}
        assert rows["g"]["type"] == "gauge" and rows["g"]["peak"] == 2
        assert rows["h"]["type"] == "histogram"
        assert rows["h"]["count"] == 1
        assert rows["h"]["buckets"] == [["[4, 8)", 1]]
