"""Observability must observe, never perturb.

The acceptance bar for the metrics subsystem: enabling the registry
around a simulation changes *nothing* about the result (bit-identical
digest), and a profiled run populates the instruments each subsystem is
supposed to bump.
"""

from repro.obs import MetricsRegistry, use_registry
from repro.sim.config import CacheConfig, SimConfig
from repro.sim.system import simulate
from repro.util.units import MB
from repro.workloads.base import generate_workload


def tiny_traces():
    return [generate_workload("venus", scale=0.05, seed=3).trace]


def tiny_config():
    return SimConfig(cache=CacheConfig(size_bytes=8 * MB))


class TestNonPerturbation:
    def test_enabled_registry_is_bit_identical_to_disabled(self):
        baseline = simulate(tiny_traces(), tiny_config())
        with use_registry(MetricsRegistry()):
            profiled = simulate(tiny_traces(), tiny_config())
        assert profiled.digest() == baseline.digest()

    def test_explicit_obs_argument_is_bit_identical(self):
        baseline = simulate(tiny_traces(), tiny_config())
        profiled = simulate(tiny_traces(), tiny_config(), obs=MetricsRegistry())
        assert profiled.digest() == baseline.digest()


class TestInstrumentsPopulated:
    def test_each_subsystem_reports(self):
        reg = MetricsRegistry()
        result = simulate(tiny_traces(), tiny_config(), obs=reg)
        snap = reg.snapshot()

        # engine
        assert snap["sim.engine.events_run"] == result.events_run > 0
        assert snap["sim.engine.heap_depth"]["peak"] >= 1
        # cache: mirrored stats plus the derived hit fraction
        assert snap["sim.cache.read_requests"] > 0
        hit = snap["sim.cache.hit_fraction"]["value"]
        assert abs(hit - result.cache.hit_fraction) < 1e-12
        # disk, incl. per-device busy accounting
        assert snap["sim.disk.requests"] > 0
        device_busy = [
            v["value"] if isinstance(v, dict) else v
            for name, v in snap.items()
            if name.startswith("sim.disk.device.")
        ]
        assert device_busy and sum(device_busy) > 0
        # scheduler and per-process accounting
        assert snap["sim.sched.dispatches"] > 0
        assert "sim.sched.context_switches" in snap
        assert snap["sim.proc.1.ios"] > 0

    def test_disabled_registry_collects_nothing(self):
        reg = MetricsRegistry(enabled=False)
        simulate(tiny_traces(), tiny_config(), obs=reg)
        assert reg.snapshot() == {}
