"""Metric instruments, the registry, and the active-registry context."""

import pytest

from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)


class TestInstruments:
    def test_counter_inc_and_add(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        c.add(0.5)
        assert c.value == 5.5

    def test_gauge_tracks_peak(self):
        g = Gauge("x")
        g.set(3.0)
        g.set(1.0)
        assert g.value == 1.0
        assert g.peak == 3.0

    def test_gauge_set_max_only_moves_up(self):
        g = Gauge("x")
        g.set_max(5)
        g.set_max(2)
        assert g.value == 5
        assert g.peak == 5

    def test_histogram_summary_stats(self):
        h = Histogram("x")
        for v in (1, 2, 3, 10):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(4.0)
        assert h.min == 1
        assert h.max == 10

    def test_histogram_power_of_two_buckets(self):
        h = Histogram("x")
        h.observe(0.5)  # bucket [0, 1)
        h.observe(1)  # [1, 2)
        h.observe(3)  # [2, 4)
        h.observe(3)
        labels = dict(h.nonzero_buckets())
        assert labels["[0, 1)"] == 1
        assert labels["[1, 2)"] == 1
        assert labels["[2, 4)"] == 2

    def test_histogram_huge_values_clamp_to_last_bucket(self):
        h = Histogram("x")
        h.observe(2.0**100)
        assert h.count == 1
        assert sum(n for _, n in h.nonzero_buckets()) == 1


class TestRegistry:
    def test_instruments_memoized_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert reg.gauge("a.g") is reg.gauge("a.g")
        assert reg.histogram("a.h") is reg.histogram("a.h")
        assert len(reg) == 3

    def test_disabled_registry_hands_out_shared_nulls(self):
        reg = MetricsRegistry(enabled=False)
        # Same singleton every time: nothing allocated, nothing stored.
        assert reg.counter("a") is reg.counter("b")
        assert reg.gauge("a") is reg.gauge("b")
        assert reg.histogram("a") is reg.histogram("b")
        reg.counter("a").inc(100)
        reg.gauge("a").set(7)
        reg.histogram("a").observe(3)
        with reg.span("a"):
            pass
        assert len(reg) == 0
        assert reg.snapshot() == {}

    def test_span_times_into_histogram(self):
        reg = MetricsRegistry()
        with reg.span("timer"):
            pass
        h = reg.histogram("timer")
        assert h.count == 1
        assert h.max >= 0.0

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(4)
        reg.histogram("h").observe(8)
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == {"value": 4, "peak": 4}
        assert snap["h"]["count"] == 1 and snap["h"]["mean"] == 8

    def test_emit_without_sink_is_a_no_op(self):
        MetricsRegistry().emit("anything", n=1)

    def test_emit_forwards_to_sink(self):
        seen = []

        class Sink:
            def emit(self, kind, **fields):
                seen.append((kind, fields))

        reg = MetricsRegistry(event_sink=Sink())
        reg.emit("tick", n=3)
        assert seen == [("tick", {"n": 3})]

    def test_disabled_registry_never_emits(self):
        class Sink:
            def emit(self, kind, **fields):
                raise AssertionError("must not be called")

        MetricsRegistry(enabled=False, event_sink=Sink()).emit("tick")


class TestActiveRegistry:
    def test_default_is_the_null_registry(self):
        assert get_registry() is NULL_REGISTRY
        assert not get_registry().enabled

    def test_use_registry_scopes_and_restores(self):
        reg = MetricsRegistry()
        with use_registry(reg) as active:
            assert active is reg
            assert get_registry() is reg
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_restores_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with use_registry(reg):
                raise RuntimeError("boom")
        assert get_registry() is NULL_REGISTRY

    def test_set_registry_none_restores_null(self):
        reg = MetricsRegistry()
        set_registry(reg)
        try:
            assert get_registry() is reg
        finally:
            set_registry(None)
        assert get_registry() is NULL_REGISTRY

    def test_nested_use_registry(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_registry(outer):
            with use_registry(inner):
                assert get_registry() is inner
            assert get_registry() is outer
