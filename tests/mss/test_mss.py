"""The mass storage hierarchy: staging, drive queueing, migration."""

import pytest

from repro.mss import (
    Level,
    MassStorageSystem,
    MigrationPolicy,
    MSSConfig,
)
from repro.sim.events import Engine
from repro.util.errors import SimulationError
from repro.util.units import MB


def make_mss(**cfg):
    engine = Engine()
    config = MSSConfig(**cfg)
    return engine, MassStorageSystem(engine, config)


class TestCatalogue:
    def test_register_and_query(self):
        _, mss = make_mss()
        mss.register(1, 100 * MB, Level.NEARLINE)
        assert mss.level_of(1) == Level.NEARLINE
        assert mss.size_of(1) == 100 * MB
        assert mss.files_at(Level.NEARLINE) == [1]

    def test_disk_files_consume_capacity(self):
        _, mss = make_mss(disk_capacity_bytes=1000 * MB)
        mss.register(1, 400 * MB, Level.DISK)
        assert mss.disk_used_bytes == 400 * MB
        assert mss.disk_free_bytes == 600 * MB

    def test_validation(self):
        _, mss = make_mss()
        with pytest.raises(SimulationError):
            mss.register(1, 0, Level.DISK)
        mss.register(1, 10, Level.DISK)
        with pytest.raises(SimulationError):
            mss.register(1, 10, Level.DISK)
        with pytest.raises(SimulationError):
            mss.level_of(99)
        with pytest.raises(ValueError):
            MSSConfig(n_drives=0)
        with pytest.raises(ValueError):
            MSSConfig(disk_capacity_bytes=0)


class TestStaging:
    def test_disk_resident_opens_immediately(self):
        engine, mss = make_mss()
        mss.register(1, 10 * MB, Level.DISK)
        ready = []
        assert mss.open_file(1, lambda: ready.append(engine.now)) is None
        assert ready == [0.0]

    def test_nearline_stage_latency(self):
        engine, mss = make_mss(mount_s=15.0)
        mss.register(1, 300 * MB, Level.NEARLINE)
        ready = []
        request = mss.open_file(1, lambda: ready.append(engine.now))
        assert request is not None
        engine.run()
        expected = 15.0 + 300 * MB / (3.0 * MB)
        assert ready == [pytest.approx(expected)]
        assert request.latency_s == pytest.approx(expected)
        assert mss.level_of(1) == Level.DISK

    def test_offline_adds_operator_fetch(self):
        engine, mss = make_mss()
        mss.register(1, 3 * MB, Level.OFFLINE)
        mss.register(2, 3 * MB, Level.NEARLINE)
        done = {}
        mss.open_file(1, lambda: done.setdefault(1, engine.now))
        mss.open_file(2, lambda: done.setdefault(2, engine.now))
        engine.run()
        assert done[1] - done[2] == pytest.approx(300.0)

    def test_drive_queueing(self):
        # One drive, three equal stages: completions serialize.
        engine, mss = make_mss(n_drives=1)
        for fid in (1, 2, 3):
            mss.register(fid, 30 * MB, Level.NEARLINE)
        done = {}
        for fid in (1, 2, 3):
            mss.open_file(fid, lambda f=fid: done.setdefault(f, engine.now))
        engine.run()
        per = 15.0 + 10.0
        assert done[1] == pytest.approx(per)
        assert done[2] == pytest.approx(2 * per)
        assert done[3] == pytest.approx(3 * per)
        # the first request dispatches immediately; two ever wait
        assert mss.stats.max_queue_depth == 2
        assert mss.stats.stages_completed == 3

    def test_more_drives_parallelize(self):
        engine, mss = make_mss(n_drives=3)
        for fid in (1, 2, 3):
            mss.register(fid, 30 * MB, Level.NEARLINE)
            mss.open_file(fid, lambda: None)
        engine.run()
        assert engine.now == pytest.approx(25.0)

    def test_queue_wait_accounted(self):
        engine, mss = make_mss(n_drives=1)
        mss.register(1, 30 * MB, Level.NEARLINE)
        mss.register(2, 30 * MB, Level.NEARLINE)
        r1 = mss.open_file(1, lambda: None)
        r2 = mss.open_file(2, lambda: None)
        engine.run()
        assert r1.queue_wait_s == 0.0
        assert r2.queue_wait_s == pytest.approx(25.0)

    def test_stage_requires_disk_space(self):
        _, mss = make_mss(disk_capacity_bytes=100 * MB)
        mss.register(1, 80 * MB, Level.DISK)
        mss.register(2, 50 * MB, Level.NEARLINE)
        with pytest.raises(SimulationError, match="disk full"):
            mss.open_file(2, lambda: None)


class TestMigration:
    def make_loaded(self):
        engine, mss = make_mss(disk_capacity_bytes=1000 * MB)
        for fid, age in ((1, 5.0), (2, 1.0), (3, 9.0)):
            mss.register(fid, 300 * MB, Level.DISK)
            mss._files[fid].last_access = age
        return engine, mss

    def test_watermark_pass_demotes_lru(self):
        _, mss = self.make_loaded()
        policy = MigrationPolicy(mss, high_watermark=0.85, low_watermark=0.5)
        assert policy.needed()
        report = policy.run_pass()
        # LRU order: file 2 (age 1.0) goes first; one demotion reaches 60%,
        # still above 50%, so file 1 follows.
        assert report.migrated_files == [2, 1]
        assert mss.level_of(2) == Level.NEARLINE
        assert not policy.needed()

    def test_pinned_files_skipped(self):
        _, mss = self.make_loaded()
        policy = MigrationPolicy(mss, high_watermark=0.85, low_watermark=0.5)
        policy.pin(2)
        report = policy.run_pass()
        assert 2 not in report.migrated_files

    def test_ensure_room(self):
        _, mss = self.make_loaded()
        policy = MigrationPolicy(mss)
        report = policy.ensure_room(200 * MB)
        assert report.bytes_freed >= 200 * MB - mss.disk_free_bytes
        assert mss.disk_free_bytes >= 200 * MB

    def test_ensure_room_fails_when_all_pinned(self):
        _, mss = self.make_loaded()
        policy = MigrationPolicy(mss, pinned={1, 2, 3})
        with pytest.raises(SimulationError, match="pinned"):
            policy.ensure_room(500 * MB)

    def test_watermark_validation(self):
        _, mss = self.make_loaded()
        with pytest.raises(ValueError):
            MigrationPolicy(mss, high_watermark=0.5, low_watermark=0.9)

    def test_stage_after_migration_round_trip(self):
        engine, mss = self.make_loaded()
        policy = MigrationPolicy(mss)
        policy.ensure_room(300 * MB)
        demoted = [f for f in (1, 2, 3) if mss.level_of(f) == Level.NEARLINE]
        fid = demoted[0]
        done = []
        mss.open_file(fid, lambda: done.append(engine.now))
        engine.run()
        assert done and mss.level_of(fid) == Level.DISK
