"""Workload staging helper."""

import pytest

from repro.mss.hierarchy import Level, MSSConfig
from repro.mss.staging import data_file_sizes, stage_workload
from repro.util.units import MB
from repro.workloads import generate_workload


@pytest.fixture(scope="module")
def ccm():
    return generate_workload("ccm", scale=0.1)


def test_data_file_sizes_cover_accesses(ccm):
    sizes = data_file_sizes(ccm)
    trace = ccm.trace
    assert set(sizes) == set(int(f) for f in trace.file_ids())
    ends = trace.offset + trace.length
    for fid, size in sizes.items():
        assert size == int(ends[trace.file_id == fid].max())


def test_stage_workload_latency_scales_with_bandwidth(ccm):
    slow = stage_workload(
        ccm, config=MSSConfig(n_drives=8, tape_bandwidth_bytes_per_s=1 * MB)
    )
    fast = stage_workload(
        ccm, config=MSSConfig(n_drives=8, tape_bandwidth_bytes_per_s=10 * MB)
    )
    assert slow.ready_at_s > fast.ready_at_s
    assert slow.total_bytes == fast.total_bytes


def test_offline_slower_than_nearline(ccm):
    near = stage_workload(ccm, n_drives=8)
    off = stage_workload(ccm, n_drives=8, level=Level.OFFLINE)
    assert off.ready_at_s >= near.ready_at_s + 300.0 - 1e-6


def test_drive_work_conserved(ccm):
    one = stage_workload(ccm, n_drives=1)
    many = stage_workload(ccm, n_drives=8)
    assert one.drive_busy_s == pytest.approx(many.drive_busy_s)
    assert many.ready_at_s <= one.ready_at_s
