"""The `repro bench` harness: payload shape and regression verdicts."""

import json

import pytest

from repro.bench import (
    SCHEMA,
    bench_cache,
    bench_decode,
    bench_engine,
    compare_to_baseline,
    load_baseline,
    render_table,
    write_payload,
)


def _payload(quick=True, **values):
    return {
        "schema": SCHEMA,
        "quick": quick,
        "benchmarks": {
            name: {
                "value": value,
                "unit": "events/s" if higher else "s",
                "wall_s": 0.1,
                "higher_is_better": higher,
                "detail": {},
            }
            for name, (value, higher) in values.items()
        },
    }


def test_engine_bench_counts_every_event():
    r = bench_engine(n_events=2_000, chains=2)
    assert r.unit == "events/s"
    assert r.value > 0
    assert r.detail["events_run"] == 2_000


def test_cache_bench_runs_to_completion():
    r = bench_cache(n_requests=500)
    assert r.unit == "ops/s"
    assert r.value > 0
    assert 0.0 <= r.detail["hit_fraction"] <= 1.0


def test_decode_bench_reports_bandwidth():
    r = bench_decode(scale=0.02, min_mb=0.01)
    assert r.unit == "MB/s"
    assert r.value > 0
    assert r.detail["records"] > 0


def test_compare_flags_throughput_drop():
    baseline = _payload(engine=(1000.0, True))
    ok = compare_to_baseline(_payload(engine=(800.0, True)), baseline)
    assert ok == []
    bad = compare_to_baseline(_payload(engine=(700.0, True)), baseline)
    assert len(bad) == 1 and "engine" in bad[0]


def test_compare_flags_wallclock_growth():
    baseline = _payload(fig8=(10.0, False))
    assert compare_to_baseline(_payload(fig8=(12.0, False)), baseline) == []
    bad = compare_to_baseline(_payload(fig8=(13.0, False)), baseline)
    assert len(bad) == 1 and "fig8" in bad[0]


def test_compare_skips_unknown_benchmarks():
    baseline = _payload(engine=(1000.0, True))
    fresh = _payload(engine=(1000.0, True), brandnew=(1.0, True))
    assert compare_to_baseline(fresh, baseline) == []


def test_compare_refuses_cross_mode():
    with pytest.raises(ValueError, match="quick"):
        compare_to_baseline(
            _payload(quick=True), _payload(quick=False)
        )


def test_payload_roundtrip(tmp_path):
    payload = _payload(engine=(1000.0, True))
    path = write_payload(payload, tmp_path / "BENCH_sim.json")
    assert load_baseline(path) == payload
    assert json.loads(path.read_text())["schema"] == SCHEMA


def test_render_table_mentions_every_benchmark():
    table = render_table(_payload(engine=(1000.0, True), fig8=(9.0, False)))
    assert "engine" in table and "fig8" in table


def test_committed_baseline_is_loadable():
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    baseline = load_baseline(root / "benchmarks" / "perf" / "baseline.json")
    assert baseline["schema"] == SCHEMA
    assert baseline["quick"] is True
    assert set(baseline["benchmarks"]) == {
        "engine",
        "cache",
        "decode",
        "store",
        "fig8",
        "fig8_batch",
        "fig8_warm",
    }
    fig8 = baseline["benchmarks"]["fig8"]
    batch = baseline["benchmarks"]["fig8_batch"]
    # The batch kernel's contract: same sweep, bit-identical rows.
    assert batch["detail"]["digest"] == fig8["detail"]["digest"]


def test_store_bench_pins_trace_cache_cold(monkeypatch, tmp_path):
    # Regression: the store section used to measure the bundle load with
    # whatever $REPRO_TRACE_CACHE the caller had -- a warm compile cache
    # made the number incomparable to the committed baseline.  The pin
    # must happen inside the section itself, and the caller's setting
    # must survive the call.
    import os

    from repro.bench import bench_store
    from repro.trace import store as store_mod

    warm = str(tmp_path / "warm-cache")
    monkeypatch.setenv("REPRO_TRACE_CACHE", warm)
    seen = {}
    real_compile = store_mod.compile_trace
    real_load = store_mod.load_compiled

    def spy_compile(*args, **kwargs):
        seen["compile"] = os.environ.get("REPRO_TRACE_CACHE")
        return real_compile(*args, **kwargs)

    def spy_load(*args, **kwargs):
        seen["load"] = os.environ.get("REPRO_TRACE_CACHE")
        return real_load(*args, **kwargs)

    monkeypatch.setattr(store_mod, "compile_trace", spy_compile)
    monkeypatch.setattr(store_mod, "load_compiled", spy_load)
    bench_store(scale=0.02, min_mb=0.01)
    assert seen["compile"] == "off"
    assert seen["load"] == "off"
    assert os.environ["REPRO_TRACE_CACHE"] == warm


def test_fig8_batch_bench_matches_fig8_digest(monkeypatch):
    # The batch section pins its engine for the measurement, restores
    # the caller's env, and -- the acceptance contract -- produces the
    # same sweep digest as the event-engine section.
    import os

    from repro.bench import bench_fig8, bench_fig8_batch

    monkeypatch.setenv("REPRO_ENGINE_IMPL", "event")
    batch = bench_fig8_batch(scale=0.02)
    assert os.environ["REPRO_ENGINE_IMPL"] == "event"
    assert batch.detail["engine_impl"] == "batch"
    event = bench_fig8(scale=0.02)
    assert batch.detail["digest"] == event.detail["digest"]
