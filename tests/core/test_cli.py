"""Command-line interface."""

import pytest

from repro.cli import main


class TestExperimentsCommand:
    def test_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("table1", "fig8", "write-behind"):
            assert exp_id in out


class TestRunCommand:
    def test_run_table2(self, capsys):
        assert main(["run", "table2", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "venus" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_reports_subsystem_metrics(self, capsys):
        assert main(["profile", "fig6", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        # the experiment report itself, then the per-subsystem tables
        assert "== metrics: fig6 ==" in out
        assert "sim.cache.hit_fraction" in out
        assert "sim.disk.device." in out  # per-device busy time
        assert "sim.sched.context_switches" in out
        assert "sim.engine.events_run" in out

    def test_profile_metrics_only_and_dumps(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.jsonl"
        events = tmp_path / "events.jsonl"
        assert main(
            [
                "profile", "fig6", "--scale", "0.05", "--metrics-only",
                "--metrics-out", str(metrics),
                "--events-out", str(events),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "idle" not in out.split("== metrics")[0]  # report suppressed
        assert metrics.exists() and events.exists()
        assert "batched flush" in out

        import json

        rows = [json.loads(line) for line in metrics.read_text().splitlines()]
        names = {r["metric"] for r in rows}
        assert "sim.engine.events_run" in names
        evs = [json.loads(line) for line in events.read_text().splitlines()]
        assert any(e["kind"] == "simulation" for e in evs)

    def test_profile_unknown_experiment(self, capsys):
        assert main(["profile", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_with_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        assert main(
            ["run", "fig6", "--scale", "0.05", "--metrics-out", str(metrics)]
        ) == 0
        assert metrics.exists()
        assert "wrote" in capsys.readouterr().out


class TestGenerateAnalyze:
    def test_generate_then_analyze(self, tmp_path, capsys):
        trace_path = tmp_path / "ccm.trace"
        assert main(
            ["generate", "ccm", "-o", str(trace_path), "--scale", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert trace_path.exists()

        assert main(["analyze", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "records:" in out
        assert "sequentiality:" in out
        assert "swap" in out  # ccm is swap-dominated

    def test_generate_unknown_app(self, tmp_path, capsys):
        assert main(["generate", "doom", "-o", str(tmp_path / "x")]) == 2
        assert "unknown application" in capsys.readouterr().err


class TestFiguresCommand:
    def test_figures_written(self, tmp_path, capsys):
        out = tmp_path / "figs"
        assert main(["figures", "--out", str(out), "--scale", "0.1"]) == 0
        printed = capsys.readouterr().out
        assert printed.count("wrote") == 10  # 5 figures x (svg + csv)
        assert (out / "fig3.svg").exists()
        assert (out / "fig8.csv").exists()


class TestSimulateCommand:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "venus.trace"
        assert main(
            ["generate", "venus", "-o", str(path), "--scale", "0.1"]
        ) == 0
        return path

    def test_simulate_two_copies(self, trace_file, capsys):
        capsys.readouterr()
        assert main(
            [
                "simulate",
                str(trace_file),
                str(trace_file),
                "--cache-mb",
                "128",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "utilization" in out
        assert "process 1" in out and "process 2" in out

    def test_simulate_engine_impl_flag(self, trace_file, capsys, monkeypatch):
        # --engine-impl batch routes through the batch kernel (via the
        # same $REPRO_ENGINE_IMPL plumbing the sweeps use) and must
        # print the exact same summary -- bit-identical results are the
        # kernel's contract.
        import os

        monkeypatch.delenv("REPRO_ENGINE_IMPL", raising=False)
        base = ["simulate", str(trace_file), str(trace_file)]
        capsys.readouterr()
        assert main(base + ["--engine-impl", "event"]) == 0
        event_out = capsys.readouterr().out
        assert main(base + ["--engine-impl", "batch"]) == 0
        batch_out = capsys.readouterr().out
        assert os.environ["REPRO_ENGINE_IMPL"] == "batch"
        assert batch_out == event_out

    def test_shared_files_change_outcome(self, trace_file, capsys):
        # Sharing the data set means one copy's reads warm the cache for
        # the other: higher hit fraction than private copies.
        capsys.readouterr()
        base = ["simulate", str(trace_file), str(trace_file), "--cache-mb", "64"]
        assert main(base) == 0
        private = capsys.readouterr().out
        assert main(base + ["--share-files"]) == 0
        shared = capsys.readouterr().out

        def hits(text):
            for line in text.splitlines():
                if "cache hit fraction" in line:
                    return float(line.split(":")[1].split("%")[0])
            raise AssertionError("no hit line")

        assert hits(shared) > hits(private)

    def test_simulate_metrics_out(self, trace_file, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        capsys.readouterr()
        assert main(
            ["simulate", str(trace_file), "--metrics-out", str(metrics)]
        ) == 0
        out = capsys.readouterr().out
        assert "utilization" in out and "wrote" in out
        assert metrics.exists()

    def test_simulate_ssd_options(self, trace_file, capsys):
        capsys.readouterr()
        assert main(
            [
                "simulate",
                str(trace_file),
                "--ssd",
                "--cache-mb",
                "256",
                "--no-read-ahead",
                "--cpus",
                "2",
            ]
        ) == 0
        assert "utilization" in capsys.readouterr().out
