"""The Study facade and experiment registry."""

import pytest

from repro.core import EXPERIMENTS, Study, experiment_ids, run_experiment


@pytest.fixture(scope="module")
def study():
    return Study(scale=0.1)


class TestStudy:
    def test_workloads_cached(self, study):
        a = study.workload("venus")
        b = study.workload("venus")
        assert a is b

    def test_tables_render(self, study):
        t1 = study.table1()
        t2 = study.table2()
        for name in ("bvi", "venus", "upw"):
            assert name in t1 and name in t2
        assert "paper" in t1

    def test_figures_3_4(self, study):
        fig3 = study.figure3()
        fig4 = study.figure4()
        assert fig3.peak > 60  # venus bursts
        assert fig4.peak > 60  # les bursts
        assert study.cycles("venus").is_cyclic

    def test_default_scales_used(self):
        s = Study()
        assert s.app_scale("bvi") < s.app_scale("venus")

    def test_seed_controls_generation(self):
        a = Study(scale=0.1, seed=1).workload("ccm")
        b = Study(scale=0.1, seed=2).workload("ccm")
        assert (a.trace.start_time != b.trace.start_time).any()


class TestRegistry:
    def test_all_experiments_present(self):
        expected = {
            "table1",
            "table2",
            "fig3",
            "fig4",
            "fig6",
            "fig7",
            "fig8",
            "policy-sweep",
            "ssd-utilization",
            "write-behind",
            "n-plus-one",
            "batch-tradeoff",
            "mss-staging",
            "fault-sweep",
        }
        assert set(experiment_ids()) == expected
        for exp in EXPERIMENTS.values():
            assert exp.title
            assert exp.paper_section

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_run_table_experiments(self, study):
        out = run_experiment("table1", study)
        assert "Table 1" in out
        out = run_experiment("table2", study)
        assert "Table 2" in out

    def test_run_figure_experiment(self, study):
        out = run_experiment("fig3", study)
        assert "venus" in out
        assert "peak" in out
