"""SVG chart writer and the figure-rendering pipeline."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.figures import save_figures
from repro.core.study import Study
from repro.util.svgplot import SVGChart, bar_chart, line_chart

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestSVGWriter:
    def test_line_chart_valid_svg(self):
        chart = line_chart(
            [0, 1, 2, 3], [0, 5, 2, 8], title="t", x_label="x", y_label="y"
        )
        root = parse(chart.render())
        assert root.tag == f"{SVG_NS}svg"
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == 1
        texts = [t.text for t in root.iter(f"{SVG_NS}text")]
        assert "t" in texts and "x" in texts and "y" in texts

    def test_bar_chart_valid_svg(self):
        chart = bar_chart(["a", "b"], [3.0, 7.0], title="bars")
        root = parse(chart.render())
        rects = root.findall(f"{SVG_NS}rect")
        # background + frame + 2 bars
        assert len(rects) == 4

    def test_escaping(self):
        chart = line_chart([0, 1], [1, 2], title="a < b & c")
        root = parse(chart.render())  # must not raise
        texts = [t.text for t in root.iter(f"{SVG_NS}text")]
        assert "a < b & c" in texts

    def test_multi_series_legend(self):
        chart = SVGChart(title="multi")
        chart.set_ranges([0, 10], [0, 100])
        chart.add_axes()
        chart.add_line([0, 10], [0, 100], series=0, label="one")
        chart.add_line([0, 10], [100, 0], series=1, label="two")
        root = parse(chart.render())
        assert len(root.findall(f"{SVG_NS}polyline")) == 2
        texts = [t.text for t in root.iter(f"{SVG_NS}text")]
        assert "one" in texts and "two" in texts

    def test_validation(self):
        chart = SVGChart()
        with pytest.raises(ValueError):
            chart.set_ranges([], [])
        chart.set_ranges([0, 1], [0, 1])
        with pytest.raises(ValueError):
            chart.add_line([0, 1], [0])
        with pytest.raises(ValueError):
            chart.add_bars(["a"], [1, 2])

    def test_save(self, tmp_path):
        path = tmp_path / "c.svg"
        line_chart([0, 1], [0, 1]).save(path)
        assert path.read_text().startswith("<svg")


class TestSaveFigures:
    def test_all_figures_written(self, tmp_path):
        study = Study(scale=0.1)
        written = save_figures(study, tmp_path)
        stems = {p.name for p in written}
        for fig in ("fig3", "fig4", "fig6", "fig7", "fig8"):
            assert f"{fig}.svg" in stems
            assert f"{fig}.csv" in stems
        # every SVG parses; every CSV has a header and rows
        for path in written:
            if path.suffix == ".svg":
                parse(path.read_text())
            else:
                lines = path.read_text().splitlines()
                assert len(lines) > 2
                assert "," in lines[0]

    def test_fig8_has_two_series(self, tmp_path):
        study = Study(scale=0.1)
        save_figures(study, tmp_path)
        root = parse((tmp_path / "fig8.svg").read_text())
        assert len(root.findall(f"{SVG_NS}polyline")) == 2
        csv = (tmp_path / "fig8.csv").read_text().splitlines()
        assert csv[0] == "block_kb,cache_mb,idle_seconds,utilization"
        assert len(csv) == 1 + 2 * 7  # two block sizes x seven cache sizes
