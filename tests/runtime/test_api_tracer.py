"""The traced application runtime API."""

import pytest

from repro.runtime.api import AppRuntime
from repro.runtime.files import FileSystem
from repro.runtime.latency import DISK_PROFILE, SSD_PROFILE, DeviceLatencyModel, ssd_transfer_ticks
from repro.runtime.tracer import LibraryTracer
from repro.trace import flags as F
from repro.trace.procstat import ProcstatCollector
from repro.trace.record import parse_file_name_comment
from repro.trace.reconstruct import events_to_records
from repro.trace.validate import validate_records
from repro.util.errors import RuntimeAPIError


def make_runtime(latency=DISK_PROFILE, **kw):
    fs = FileSystem()
    fs.create("input", size=1 << 20)
    return AppRuntime(1, fs, latency=latency, **kw)


class TestLatencyModels:
    def test_disk_service_time(self):
        # 9.6 MB/s: a 9.6 MB transfer takes 1 s = 100_000 ticks + overhead
        t = DISK_PROFILE.service_ticks(int(9.6 * 1024 * 1024))
        assert t == pytest.approx(100_000 + 1500, abs=2)

    def test_ssd_faster_than_disk(self):
        n = 32 * 1024
        assert SSD_PROFILE.service_ticks(n) < DISK_PROFILE.service_ticks(n)

    def test_ssd_us_per_kb(self):
        assert ssd_transfer_ticks(10240) == 1  # 10 KB -> 10 us -> 1 tick
        assert ssd_transfer_ticks(0) == 0
        with pytest.raises(ValueError):
            ssd_transfer_ticks(-1)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DISK_PROFILE.service_ticks(-1)


class TestSyncIO:
    def test_read_stalls_on_disk(self):
        rt = make_runtime()
        fd = rt.open("input")
        cpu_before = rt.clock.cpu
        wall_before = rt.clock.wall
        rt.read(fd, 4096)
        # wall advanced by syscall + service; CPU only by syscall
        assert rt.clock.cpu - cpu_before == rt.syscall_cpu_ticks
        assert rt.clock.wall - wall_before > DISK_PROFILE.service_ticks(4096)

    def test_ssd_charges_cpu_not_stall(self):
        rt = make_runtime(latency=SSD_PROFILE)
        fd = rt.open("input")
        rt.read(fd, 4096)
        # non-suspending device: wall == cpu (no sleep at all)
        assert rt.clock.wall == rt.clock.cpu

    def test_sequential_positions(self):
        rt = make_runtime()
        fd = rt.open("input")
        rt.read(fd, 1000)
        rt.read(fd, 1000)
        assert rt.tell(fd) == 2000
        events = rt.tracer.events
        assert events[0].offset == 0 and events[1].offset == 1000

    def test_seek_and_read(self):
        rt = make_runtime()
        fd = rt.open("input")
        rt.seek(fd, 500)
        rt.read(fd, 100)
        assert rt.tracer.events[0].offset == 500
        with pytest.raises(RuntimeAPIError):
            rt.seek(fd, -1)

    def test_read_past_eof_rejected(self):
        rt = make_runtime()
        fd = rt.open("input")
        rt.seek(fd, (1 << 20) - 10)
        with pytest.raises(RuntimeAPIError):
            rt.read(fd, 100)

    def test_write_extends_file(self):
        rt = make_runtime()
        fd = rt.open("out", create=True)
        rt.write(fd, 10_000)
        assert rt.file_size(fd) == 10_000
        rt.seek(fd, 5000)
        rt.write(fd, 1000)
        assert rt.file_size(fd) == 10_000  # inside, no growth

    def test_zero_length_io_rejected(self):
        rt = make_runtime()
        fd = rt.open("input")
        with pytest.raises(RuntimeAPIError):
            rt.read(fd, 0)

    def test_unlink(self):
        rt = make_runtime()
        fd = rt.open("tmp", create=True)
        rt.write(fd, 100)
        rt.unlink("tmp")
        assert not rt.fs.exists("tmp")
        # open descriptor still usable (UNIX last-close semantics)
        rt.seek(fd, 0)
        rt.read(fd, 100)
        with pytest.raises(RuntimeAPIError):
            rt.unlink("tmp")

    def test_bad_fd(self):
        rt = make_runtime()
        with pytest.raises(RuntimeAPIError):
            rt.read(99, 10)
        fd = rt.open("input")
        rt.close(fd)
        with pytest.raises(RuntimeAPIError):
            rt.read(fd, 10)


class TestAsyncIO:
    def test_reada_does_not_stall(self):
        rt = make_runtime()
        fd = rt.open("input")
        wall_before = rt.clock.wall
        req = rt.reada(fd, 65536)
        assert rt.clock.wall - wall_before == rt.syscall_cpu_ticks
        assert not req.done
        assert rt.pending_requests == (req,)

    def test_wait_stalls_to_completion(self):
        rt = make_runtime()
        fd = rt.open("input")
        req = rt.reada(fd, 65536)
        rt.wait(req)
        assert req.done
        assert rt.clock.wall == req.complete_at_wall
        assert rt.pending_requests == ()

    def test_compute_overlaps_async(self):
        # Compute long enough that the I/O finished in the background:
        # wait() is then free.
        rt = make_runtime()
        fd = rt.open("input")
        req = rt.reada(fd, 4096)
        rt.compute(1.0)  # far longer than the transfer
        wall = rt.clock.wall
        rt.wait(req)
        assert rt.clock.wall == wall  # no extra stall

    def test_wait_all_and_double_wait(self):
        rt = make_runtime()
        fd = rt.open("input")
        r1 = rt.reada(fd, 4096)
        rt.seek(fd, 65536)
        r2 = rt.reada(fd, 4096)
        rt.wait_all()
        assert r1.done and r2.done
        rt.wait(r1)  # idempotent

    def test_async_flag_recorded(self):
        rt = make_runtime()
        fd = rt.open("input")
        rt.reada(fd, 4096)
        rt.read(fd, 4096)
        a, s = rt.tracer.events
        assert a.record_type & F.TRACE_ASYNC
        assert not s.record_type & F.TRACE_ASYNC


class TestTracing:
    def test_events_carry_clocks_and_ids(self):
        rt = make_runtime()
        rt.compute(0.5)
        fd = rt.open("input")
        rt.read(fd, 1024)
        (e,) = rt.tracer.events
        assert e.process_id == 1
        assert e.operation_id == 1
        assert e.process_clock >= 50_000  # the 0.5 s of compute
        assert e.length == 1024

    def test_each_open_gets_new_file_id(self):
        rt = make_runtime()
        fd1 = rt.open("input")
        rt.close(fd1)
        fd2 = rt.open("input")
        rt.read(fd2, 10)
        ids = [parse_file_name_comment(c) for c in rt.tracer.comments]
        assert ids == [(1, "input"), (2, "input")]
        assert rt.tracer.events[0].file_id == 2

    def test_shared_tracer_unique_ids_across_processes(self):
        fs = FileSystem()
        fs.create("a", size=1000)
        fs.create("b", size=1000)
        tracer = LibraryTracer()
        rt1 = AppRuntime(1, fs, tracer=tracer)
        rt2 = AppRuntime(2, fs, tracer=tracer)
        fda = rt1.open("a")
        fdb = rt2.open("b")
        rt1.read(fda, 10)
        rt2.read(fdb, 10)
        events = tracer.events
        assert events[0].file_id != events[1].file_id
        assert events[0].operation_id != events[1].operation_id

    def test_tracer_feeds_collector(self):
        packets = []
        collector = ProcstatCollector(packets.append, max_events_per_packet=2)
        with LibraryTracer(collector) as tracer:
            rt = AppRuntime(1, tracer=tracer)
            fd = rt.open("out", create=True)
            for _ in range(5):
                rt.write(fd, 512)
        assert sum(len(p) for p in packets) == 5

    def test_generated_stream_is_valid_trace(self):
        rt = make_runtime()
        fd = rt.open("input")
        for _ in range(20):
            rt.compute(0.001)
            rt.read(fd, 4096)
        rt.seek(fd, 0)
        out = rt.open("out", create=True)
        rt.write(out, 8192)
        records = list(events_to_records(rt.tracer.events))
        report = validate_records(records)
        assert report.ok, report.problems
