"""Process clocks and the simulated file namespace."""

import pytest

from repro.runtime.clock import ProcessClock
from repro.runtime.files import FileSystem, SimulatedFile
from repro.util.errors import RuntimeAPIError


class TestProcessClock:
    def test_compute_advances_both(self):
        c = ProcessClock()
        c.compute(100)
        assert c.wall == 100 and c.cpu == 100

    def test_stall_advances_wall_only(self):
        c = ProcessClock()
        c.compute(50)
        c.stall(25)
        assert c.wall == 75 and c.cpu == 50

    def test_seconds_views(self):
        c = ProcessClock()
        c.compute_seconds(1.0)
        assert c.cpu == 100_000
        assert c.cpu_seconds == pytest.approx(1.0)
        assert c.wall_seconds == pytest.approx(1.0)

    def test_start_wall_offset(self):
        c = ProcessClock(start_wall=500)
        assert c.wall == 500 and c.cpu == 0

    def test_rejects_negative(self):
        c = ProcessClock()
        with pytest.raises(ValueError):
            c.compute(-1)
        with pytest.raises(ValueError):
            c.stall(-1)
        with pytest.raises(ValueError):
            ProcessClock(start_wall=-1)


class TestFileSystem:
    def test_create_and_lookup(self):
        fs = FileSystem()
        f = fs.create("data", size=1000)
        assert fs.lookup("data") is f
        assert fs.exists("data")
        assert len(fs) == 1

    def test_create_duplicate_rejected(self):
        fs = FileSystem()
        fs.create("x")
        with pytest.raises(RuntimeAPIError):
            fs.create("x")

    def test_lookup_missing(self):
        with pytest.raises(RuntimeAPIError):
            FileSystem().lookup("nope")

    def test_open_or_create(self):
        fs = FileSystem()
        a = fs.open_or_create("x")
        b = fs.open_or_create("x")
        assert a is b

    def test_unlink(self):
        fs = FileSystem()
        fs.create("x")
        fs.unlink("x")
        assert not fs.exists("x")
        with pytest.raises(RuntimeAPIError):
            fs.unlink("x")

    def test_total_bytes(self):
        fs = FileSystem()
        fs.create("a", size=100)
        fs.create("b", size=200)
        assert fs.total_bytes == 300

    def test_file_extend(self):
        f = SimulatedFile("x", 100)
        f.extend_to(50)
        assert f.size == 100
        f.extend_to(150)
        assert f.size == 150
        with pytest.raises(ValueError):
            SimulatedFile("bad", -1)
