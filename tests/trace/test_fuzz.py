"""Robustness fuzzing: the decoder must never fail with anything but
TraceFormatError, no matter what bytes arrive."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.decode import TraceDecoder
from repro.trace.record import CommentRecord, TraceRecord
from repro.util.errors import TraceFormatError


@settings(max_examples=300, deadline=None)
@given(st.text(alphabet=st.characters(codec="ascii"), max_size=200))
def test_decoder_total_on_arbitrary_text(line):
    decoder = TraceDecoder()
    try:
        out = decoder.decode(line.replace("\n", " "))
    except TraceFormatError:
        return
    assert out is None or isinstance(out, (TraceRecord, CommentRecord))


@settings(max_examples=300, deadline=None)
@given(st.lists(st.integers(-(2**40), 2**40), min_size=1, max_size=12))
def test_decoder_total_on_arbitrary_numbers(values):
    line = " ".join(str(v) for v in values)
    decoder = TraceDecoder()
    try:
        out = decoder.decode(line)
    except TraceFormatError:
        return
    assert out is None or isinstance(out, (TraceRecord, CommentRecord))


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(0, 255), min_size=2, max_size=10), min_size=1, max_size=20
    )
)
def test_decoder_state_machine_never_crashes_across_lines(lines):
    # Sequences of small-field lines: some decode, some raise; the
    # decoder object must stay usable either way.
    decoder = TraceDecoder()
    decoded = 0
    for fields in lines:
        line = " ".join(str(v) for v in fields)
        try:
            if decoder.decode(line) is not None:
                decoded += 1
        except TraceFormatError:
            continue
    assert decoded >= 0


def test_decoder_rejects_float_fields():
    with pytest.raises(TraceFormatError):
        TraceDecoder().decode("128 0 0.5 1024 0 0 1 1 1 0")


def test_decoder_rejects_hex_looking_fields():
    with pytest.raises(TraceFormatError):
        TraceDecoder().decode("0x80 0 0 1024 0 0 1 1 1 0")
