"""Compiled trace store: round trips, rejection paths, compile cache.

The store's contract is bit-identity: whatever columns go in come back
byte-for-byte (same values, same dtypes), whether written directly,
compiled from ASCII, or served from the content-addressed cache -- and
anything less than a structurally sound bundle is rejected, never
half-loaded.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import MetricsRegistry, use_registry
from repro.trace import store
from repro.trace.array import TraceArray
from repro.trace.io import read_any_trace_array, read_trace_array, write_trace_array
from repro.util.errors import StoreFormatError
from repro.workloads.base import generate_workload

SEED = 19910616


@pytest.fixture()
def venus_trace():
    return generate_workload("venus", scale=0.05, seed=SEED).trace


@pytest.fixture()
def ascii_path(tmp_path, venus_trace):
    path = tmp_path / "venus.trace"
    write_trace_array(path, venus_trace, omit_operation_ids=True)
    return path


def assert_columns_identical(a: TraceArray, b: TraceArray) -> None:
    assert len(a) == len(b)
    for name, col in a.columns().items():
        other = getattr(b, name)
        assert col.dtype == other.dtype, name
        assert np.array_equal(col, other), name


class TestRoundTrip:
    def test_write_load_bit_identical(self, tmp_path, venus_trace):
        path = store.write_store(
            tmp_path / "venus.rpt",
            venus_trace,
            source={"kind": "ascii", "sha256": "x" * 64},
        )
        compiled = store.load_compiled(path, verify=True)
        assert_columns_identical(venus_trace, compiled.trace)

    def test_compile_matches_ascii_decode(self, ascii_path):
        bundle = store.compile_trace(ascii_path)
        assert bundle.name == "venus.trace.rpt"
        compiled = store.load_compiled(bundle, verify=True)
        assert_columns_identical(read_trace_array(ascii_path), compiled.trace)
        assert compiled.header.source_sha256 == store.file_digest(ascii_path)

    def test_read_any_trace_array_dispatches(self, ascii_path):
        bundle = store.compile_trace(ascii_path)
        assert_columns_identical(
            read_any_trace_array(ascii_path), read_any_trace_array(bundle)
        )

    def test_loaded_columns_are_read_only(self, tmp_path, venus_trace):
        path = store.write_store(
            tmp_path / "v.rpt", venus_trace, source={"sha256": "y" * 64}
        )
        compiled = store.load_compiled(path)
        with pytest.raises(ValueError):
            compiled.trace.offset[0] = 1

    def test_empty_trace_round_trips(self, tmp_path):
        path = store.write_store(
            tmp_path / "empty.rpt", TraceArray.empty(), source={"sha256": ""}
        )
        compiled = store.load_compiled(path, verify=True)
        assert len(compiled.trace) == 0
        assert compiled.header.files == ()

    def test_file_table_metadata(self, tmp_path, venus_trace):
        path = store.write_store(
            tmp_path / "v.rpt", venus_trace, source={"sha256": "z" * 64}
        )
        header = store.read_store_header(path)
        by_id = {row["id"]: row for row in header.files}
        assert set(by_id) == set(int(f) for f in venus_trace.file_ids())
        fid = next(iter(by_id))
        sub = venus_trace.for_file(fid)
        assert by_id[fid]["records"] == len(sub)
        assert by_id[fid]["bytes"] == sub.total_bytes

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.integers(0, 0xFFFF),   # record_type
                st.integers(0, 2**32 - 1),  # file_id
                st.integers(0, 2**31 - 1),  # process_id
                st.integers(0, 2**40),      # operation_id
                st.integers(-(2**62), 2**62),  # offset
                st.integers(0, 2**40),      # length
            ),
            max_size=50,
        )
    )
    def test_arbitrary_columns_round_trip(self, tmp_path_factory, data):
        cols = list(zip(*data)) if data else [[]] * 6
        trace = TraceArray.from_columns(
            record_type=np.asarray(cols[0], dtype=np.uint16),
            file_id=np.asarray(cols[1], dtype=np.uint32),
            process_id=np.asarray(cols[2], dtype=np.uint32),
            operation_id=np.asarray(cols[3], dtype=np.uint64),
            offset=np.asarray(cols[4], dtype=np.int64),
            length=np.asarray(cols[5], dtype=np.int64),
        )
        td = tmp_path_factory.mktemp("prop")
        path = store.write_store(td / "t.rpt", trace, source={"sha256": "p"})
        compiled = store.load_compiled(path, verify=True)
        assert_columns_identical(trace, compiled.trace)


class TestRejection:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "garbage.rpt"
        path.write_bytes(b"not a store file at all")
        assert not store.is_store_file(path)
        with pytest.raises(StoreFormatError, match="bad magic"):
            store.load_compiled(path)

    def test_missing_file(self, tmp_path):
        assert not store.is_store_file(tmp_path / "absent.rpt")
        with pytest.raises(StoreFormatError):
            store.load_compiled(tmp_path / "absent.rpt")

    def test_version_mismatch(self, tmp_path, venus_trace, monkeypatch):
        monkeypatch.setattr(store, "STORE_VERSION", store.STORE_VERSION + 1)
        path = store.write_store(
            tmp_path / "future.rpt", venus_trace, source={"sha256": "f"}
        )
        monkeypatch.undo()
        with pytest.raises(StoreFormatError, match="version"):
            store.load_compiled(path)

    def test_truncated_payload(self, tmp_path, venus_trace):
        path = store.write_store(
            tmp_path / "t.rpt", venus_trace, source={"sha256": "t"}
        )
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 100])
        with pytest.raises(StoreFormatError, match="truncated payload"):
            store.load_compiled(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "h.rpt"
        path.write_bytes(store.STORE_MAGIC + (10**6).to_bytes(8, "little"))
        with pytest.raises(StoreFormatError):
            store.load_compiled(path)

    def test_corrupt_payload_caught_by_verify(self, tmp_path, venus_trace):
        path = store.write_store(
            tmp_path / "c.rpt", venus_trace, source={"sha256": "c"}
        )
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(StoreFormatError, match="digest mismatch"):
            store.load_compiled(path, verify=True)
        # structural checks alone cannot see a same-size bit flip
        store.load_compiled(path, verify=False)

    def test_wrong_column_schema(self, tmp_path, venus_trace):
        path = store.write_store(
            tmp_path / "s.rpt", venus_trace, source={"sha256": "s"}
        )
        raw = path.read_bytes()
        header_len = int.from_bytes(raw[8:16], "little")
        header = json.loads(raw[16 : 16 + header_len])
        header["columns"][0]["name"] = "nope"
        rewritten = json.dumps(header, sort_keys=True).encode()
        # keep offsets stable by padding the header to its original size
        rewritten += b" " * (header_len - len(rewritten))
        path.write_bytes(raw[:16] + rewritten + raw[16 + header_len :])
        with pytest.raises(StoreFormatError, match="column set"):
            store.load_compiled(path)

    def test_compile_refuses_compiled_input(self, ascii_path):
        bundle = store.compile_trace(ascii_path)
        with pytest.raises(StoreFormatError, match="already"):
            store.compile_trace(bundle)


class TestCompileCache:
    def test_get_or_compile_hits_second_time(self, tmp_path, ascii_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "tc"))
        registry = MetricsRegistry()
        with use_registry(registry):
            cache = store.TraceStoreCache.default()
            first = cache.get_or_compile_file(ascii_path)
            second = cache.get_or_compile_file(ascii_path)
        assert_columns_identical(first, second)
        counters = registry.counters()
        assert counters["trace.store.compile_misses"] == 1
        assert counters["trace.store.compile_hits"] == 1
        assert counters["trace.store.compiles"] == 1
        assert counters["trace.store.bytes_mapped"] > 0
        digest = store.file_digest(ascii_path)
        assert cache.path_for(digest).exists()

    def test_disabled_by_env(self, ascii_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        cache = store.TraceStoreCache.default()
        assert not cache.enabled
        # still materializes, straight through the ASCII decoder
        trace = cache.get_or_compile_file(ascii_path)
        assert_columns_identical(trace, read_trace_array(ascii_path))

    def test_default_root_under_result_cache(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "results"))
        assert store.store_cache_root() == tmp_path / "results" / "trace-store"

    def test_corrupt_entry_degrades_to_recompile(
        self, tmp_path, ascii_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "tc"))
        cache = store.TraceStoreCache.default()
        cache.get_or_compile_file(ascii_path)
        entry = cache.path_for(store.file_digest(ascii_path))
        entry.write_bytes(b"rotten")
        with pytest.warns(RuntimeWarning, match="unusable"):
            trace = cache.get_or_compile_file(ascii_path)
        assert_columns_identical(trace, read_trace_array(ascii_path))
        # the recompile healed the entry
        assert store.is_store_file(entry)

    def test_aliased_entry_rejected(self, tmp_path, ascii_path, monkeypatch):
        # A bundle renamed to another digest's slot must not be served.
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "tc"))
        cache = store.TraceStoreCache.default()
        cache.get_or_compile_file(ascii_path)
        entry = cache.path_for(store.file_digest(ascii_path))
        alias = cache.path_for("ab" * 32)
        alias.parent.mkdir(parents=True, exist_ok=True)
        alias.write_bytes(entry.read_bytes())
        with pytest.warns(RuntimeWarning, match="unusable"):
            assert cache.load("ab" * 32) is None


class TestHeaderLengthBound:
    """Regression: the header-length check compared against the whole
    file size, admitting headers that overlap the prologue's own bytes
    or run past EOF; it must bound against ``size - prologue``."""

    PROLOGUE = len(store.STORE_MAGIC) + 8

    def craft(self, tmp_path, header_len: int, trailing: int):
        path = tmp_path / "crafted.rpt"
        path.write_bytes(
            store.STORE_MAGIC
            + header_len.to_bytes(8, "little")
            + b"\0" * trailing
        )
        return path

    def test_header_len_overrunning_eof_rejected_with_offsets(self, tmp_path):
        # size = prologue + 60, header_len = 64: the old whole-file bound
        # (64 <= 76) admitted this; the read then came up short.  Now it
        # is rejected up front with the byte offsets spelled out.
        path = self.craft(tmp_path, header_len=64, trailing=60)
        with pytest.raises(StoreFormatError, match="out of range") as err:
            store.read_store_header(path)
        message = str(err.value)
        assert "60 bytes" in message  # what the file actually holds
        assert f"[{self.PROLOGUE}, {self.PROLOGUE + 64})" in message

    def test_zero_and_negative_header_len_rejected(self, tmp_path):
        path = self.craft(tmp_path, header_len=0, trailing=32)
        with pytest.raises(StoreFormatError, match="out of range"):
            store.read_store_header(path)

    def test_exactly_fitting_header_len_passes_bound(self, tmp_path):
        # header occupies every byte past the prologue: the bound itself
        # admits it; failure is then the header's garbage JSON, not the
        # length check.
        path = self.craft(tmp_path, header_len=16, trailing=16)
        with pytest.raises(StoreFormatError) as err:
            store.read_store_header(path)
        assert "out of range" not in str(err.value)

    def test_valid_store_still_reads(self, tmp_path, venus_trace):
        path = store.write_store(
            tmp_path / "ok.rpt", venus_trace, source={"sha256": "ok"}
        )
        header = store.read_store_header(path)
        assert header.records == len(venus_trace)
