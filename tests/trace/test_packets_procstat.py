"""Packet batching, the procstat collector and stream reconstruction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import flags as F
from repro.trace.packets import (
    ENTRY_WORDS,
    PACKET_HEADER_WORDS,
    IOEvent,
    TracePacket,
    dump_packets,
    load_packets,
    packet_overhead_ratio,
)
from repro.trace.procstat import ProcstatCollector, collect_to_list
from repro.trace.reconstruct import (
    iter_events_in_time_order,
    reconstruct_array,
    reconstruct_records,
)
from repro.util.errors import TraceFormatError


def event(i, *, fid=1, pid=1):
    return IOEvent(
        record_type=F.TRACE_LOGICAL_RECORD,
        file_id=fid,
        process_id=pid,
        operation_id=i,
        offset=i * 1024,
        length=1024,
        start_time=i * 100,
        duration=5,
        process_clock=i * 50 + 50,
    )


class TestCollector:
    def test_batches_per_file(self):
        events = [event(i, fid=i % 2) for i in range(10)]
        packets = collect_to_list(events, max_events_per_packet=100)
        assert len(packets) == 2
        assert {p.file_id for p in packets} == {0, 1}
        assert sum(len(p) for p in packets) == 10

    def test_packet_size_limit(self):
        events = [event(i) for i in range(25)]
        packets = collect_to_list(events, max_events_per_packet=10)
        assert [len(p) for p in packets] == [10, 10, 5]

    def test_force_flush_interval(self):
        # Two files; flush fires every 6 events regardless of per-file fill
        events = [event(i, fid=i % 2) for i in range(12)]
        packets = collect_to_list(
            events, max_events_per_packet=1000, flush_interval=6
        )
        assert len(packets) == 4  # 2 files x 2 flush epochs
        epochs = sorted({p.flush_epoch for p in packets})
        assert epochs == [0, 1]

    def test_amortized_header_overhead(self):
        events = [event(i) for i in range(512)]
        packets = collect_to_list(events, max_events_per_packet=512)
        ratio = packet_overhead_ratio(packets)
        assert ratio < 0.01
        # one-record-per-packet pathological case
        tiny = collect_to_list(events[:4], max_events_per_packet=1)
        assert packet_overhead_ratio(tiny) == pytest.approx(
            PACKET_HEADER_WORDS / (PACKET_HEADER_WORDS + ENTRY_WORDS)
        )

    def test_sequences_are_emission_order(self):
        events = [event(i, fid=i % 3) for i in range(30)]
        packets = collect_to_list(events, max_events_per_packet=5)
        assert [p.sequence for p in packets] == sorted(p.sequence for p in packets)

    def test_close_flushes_and_rejects(self):
        packets = []
        c = ProcstatCollector(packets.append, max_events_per_packet=100)
        c.submit(event(0))
        assert packets == []
        c.close()
        assert len(packets) == 1
        with pytest.raises(RuntimeError):
            c.submit(event(1))

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            ProcstatCollector(lambda p: None, max_events_per_packet=0)
        with pytest.raises(ValueError):
            ProcstatCollector(lambda p: None, flush_interval=0)


class TestPacketFiles:
    def test_dump_load_round_trip(self, tmp_path):
        events = [event(i, fid=i % 2, pid=1 + i % 2) for i in range(20)]
        packets = collect_to_list(events, max_events_per_packet=4)
        path = tmp_path / "packets.log"
        dump_packets(path, packets)
        loaded = list(load_packets(path))
        assert len(loaded) == len(packets)
        for a, b in zip(packets, loaded):
            assert a.sequence == b.sequence
            assert a.flush_epoch == b.flush_epoch
            assert a.events == b.events

    def test_load_rejects_truncated(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("P 0 0 1 1 3\nE 128 0 0 1024 0 5 50\n")
        with pytest.raises(TraceFormatError):
            list(load_packets(path))

    def test_load_rejects_orphan_event(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("E 128 0 0 1024 0 5 50\n")
        with pytest.raises(TraceFormatError):
            list(load_packets(path))

    def test_load_rejects_unknown_tag(self, tmp_path):
        path = tmp_path / "bad.log"
        path.write_text("X nonsense\n")
        with pytest.raises(TraceFormatError):
            list(load_packets(path))


class TestReconstruction:
    def test_interleaved_files_restored_to_time_order(self):
        # Interleave two files; per-file batching scrambles global order.
        events = [event(i, fid=i % 2) for i in range(40)]
        packets = collect_to_list(events, max_events_per_packet=8)
        restored = list(iter_events_in_time_order(packets))
        assert [e.operation_id for e in restored] == list(range(40))

    def test_records_carry_process_time_deltas(self):
        events = [event(i) for i in range(5)]
        packets = collect_to_list(events)
        records = reconstruct_records(packets)
        assert [r.process_time for r in records] == [50, 50, 50, 50, 50]

    def test_reconstruct_array(self):
        events = [event(i, fid=i % 2) for i in range(10)]
        packets = collect_to_list(events, max_events_per_packet=3)
        arr = reconstruct_array(packets)
        assert len(arr) == 10
        assert list(arr.operation_id) == list(range(10))

    def test_quiet_file_survives_flush_boundary(self):
        # A parameter file touched once at the start and once at the end,
        # with a torrent to the data file in between: the early event must
        # still come out first.
        events = [event(0, fid=9)]
        events += [event(i, fid=1) for i in range(1, 99)]
        events += [event(99, fid=9)]
        packets = collect_to_list(events, max_events_per_packet=10, flush_interval=25)
        restored = list(iter_events_in_time_order(packets))
        assert restored[0].file_id == 9
        assert restored[-1].file_id == 9
        assert [e.operation_id for e in restored] == list(range(100))

    def test_rejects_unordered_packet_log(self):
        events = [event(i) for i in range(4)]
        packets = collect_to_list(events, max_events_per_packet=1, flush_interval=2)
        packets.reverse()
        with pytest.raises(ValueError):
            list(iter_events_in_time_order(packets))

    @settings(max_examples=50, deadline=None)
    @given(
        n_events=st.integers(1, 200),
        n_files=st.integers(1, 5),
        packet_cap=st.integers(1, 50),
        flush=st.integers(1, 100),
    )
    def test_reconstruction_is_lossless_property(
        self, n_events, n_files, packet_cap, flush
    ):
        events = [event(i, fid=i % n_files) for i in range(n_events)]
        packets = collect_to_list(
            events, max_events_per_packet=packet_cap, flush_interval=flush
        )
        restored = list(iter_events_in_time_order(packets))
        assert sorted(restored, key=lambda e: e.operation_id) == events
        assert [e.operation_id for e in restored] == list(range(n_events))
