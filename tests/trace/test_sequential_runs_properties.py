"""Property suite for :meth:`TraceArray.sequential_runs`.

The batch kernel leans on run segmentation as its unit of work, so the
segmentation itself gets a contract: run starts partition the row range,
every run is maximal (the record before each boundary cannot extend
across it), row order is preserved by the partition, and the boundaries
are reproducible from the ``replay_columns`` decode the simulator
actually replays from.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import flags as F
from repro.trace.array import TraceArray

BLOCK = 4096


@st.composite
def trace_arrays(draw) -> TraceArray:
    """Random traces biased toward genuine sequential runs."""
    n_segments = draw(st.integers(0, 8))
    file_ids: list[int] = []
    offsets: list[int] = []
    lengths: list[int] = []
    types: list[int] = []
    for _ in range(n_segments):
        fid = draw(st.integers(0, 2))
        length = draw(st.integers(1, 4)) * BLOCK
        offset = draw(st.integers(0, 50)) * BLOCK
        rt = draw(st.sampled_from([0, F.TRACE_WRITE]))
        for _ in range(draw(st.integers(1, 5))):
            file_ids.append(fid)
            offsets.append(offset)
            lengths.append(length)
            types.append(rt)
            offset += length
            # Occasionally perturb mid-segment so runs split where the
            # sequential condition genuinely breaks.
            if draw(st.integers(0, 4)) == 0:
                offset += draw(st.sampled_from([-BLOCK, BLOCK * 7]))
                offset = max(0, offset)
    n = len(file_ids)
    return TraceArray.from_columns(
        record_type=types,
        file_id=file_ids,
        process_id=[1] * n,
        operation_id=list(range(n)),
        offset=offsets,
        length=lengths,
        process_clock=np.arange(n, dtype=np.int64),
    )


def _extends(trace: TraceArray, i: int) -> bool:
    """Does row ``i`` extend the run ending at row ``i - 1``?"""
    same_file = trace.file_id[i] == trace.file_id[i - 1]
    contiguous = trace.offset[i] == trace.offset[i - 1] + trace.length[i - 1]
    same_size = trace.length[i] == trace.length[i - 1]
    same_dir = bool(trace.record_type[i] & F.TRACE_WRITE) == bool(
        trace.record_type[i - 1] & F.TRACE_WRITE
    )
    return bool(same_file and contiguous and same_size and same_dir)


@settings(max_examples=100, deadline=None)
@given(trace=trace_arrays())
def test_runs_partition_the_array(trace):
    starts = trace.sequential_runs()
    n = len(trace)
    if n == 0:
        assert starts.size == 0
        return
    assert starts[0] == 0
    assert np.all(np.diff(starts) > 0)  # strictly increasing
    assert starts[-1] < n
    # Run lengths tile the row range exactly.
    run_lengths = np.diff(starts, append=n)
    assert int(run_lengths.sum()) == n
    assert np.all(run_lengths > 0)


@settings(max_examples=100, deadline=None)
@given(trace=trace_arrays())
def test_runs_are_maximal_and_internally_sequential(trace):
    starts = trace.sequential_runs()
    boundaries = set(starts.tolist())
    for i in range(1, len(trace)):
        if i in boundaries:
            # Maximality: a boundary exists only where extension fails.
            assert not _extends(trace, i)
        else:
            # Interior rows really do extend their predecessor.
            assert _extends(trace, i)


@settings(max_examples=100, deadline=None)
@given(trace=trace_arrays())
def test_runs_preserve_row_order(trace):
    starts = trace.sequential_runs()
    n = len(trace)
    ends = np.append(starts[1:], n)
    parts = [trace[int(a):int(b)] for a, b in zip(starts, ends)]
    rebuilt = TraceArray.concatenate(parts)
    assert len(rebuilt) == n
    for name, col in trace.columns().items():
        assert np.array_equal(getattr(rebuilt, name), col), name


@settings(max_examples=100, deadline=None)
@given(trace=trace_arrays())
def test_runs_round_trip_through_replay_columns(trace):
    """The decoded replay lists reproduce the same segmentation.

    ``replay_columns`` is what the simulator replays from; recomputing
    the boundaries from those plain lists must agree with the vectorized
    segmentation on the array.
    """
    file_ids, offsets, lengths, is_write, _ = trace.replay_columns()
    boundaries = [0] if file_ids else []
    for i in range(1, len(file_ids)):
        extends = (
            file_ids[i] == file_ids[i - 1]
            and offsets[i] == offsets[i - 1] + lengths[i - 1]
            and lengths[i] == lengths[i - 1]
            and is_write[i] == is_write[i - 1]
        )
        if not extends:
            boundaries.append(i)
    assert trace.sequential_runs().tolist() == boundaries
