"""Property-based round trips: encode -> decode -> encode is byte-identical.

Random record streams come from :func:`repro.util.rng.derive_rng`
(hypothesis only draws the seed and stream shape), biased so every
compression opportunity fires: sequential offset extension
(``TRACE_NO_BLOCK``), repeated request sizes (``TRACE_NO_LENGTH``),
512-multiple offsets/lengths (``*_IN_BLOCKS``), and file/process/
operation-id omission.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import flags as F
from repro.trace.array import TraceArray
from repro.trace.decode import decode_lines
from repro.trace.encode import TraceEncoder, encode_records
from repro.trace.record import CommentRecord, TraceRecord
from repro.util.rng import derive_rng


def random_records(seed: int, n: int, n_files: int = 3, n_procs: int = 2):
    """A valid random trace: nondecreasing starts, biased toward the
    streams the compressor exploits."""
    rng = derive_rng(seed, "trace-roundtrip-fuzz")
    records = []
    start = 0
    next_offset: dict[int, int] = {}
    last_length: dict[int, int] = {}
    for _ in range(n):
        file_id = int(rng.integers(1, n_files + 1))
        process_id = int(rng.integers(1, n_procs + 1))

        draw = rng.random()
        if file_id in next_offset and draw < 0.35:
            offset = next_offset[file_id]  # sequential extension
        elif draw < 0.65:
            offset = int(rng.integers(0, 1 << 16)) * F.TRACE_BLOCK_SIZE
        else:
            offset = int(rng.integers(0, 1 << 24))

        if file_id in last_length and rng.random() < 0.4:
            length = last_length[file_id]  # same size as previous
        elif rng.random() < 0.5:
            length = int(rng.integers(1, 1 << 10)) * F.TRACE_BLOCK_SIZE
        else:
            length = int(rng.integers(0, 1 << 16))

        start += int(rng.integers(0, 1000))
        records.append(
            TraceRecord(
                record_type=F.make_record_type(
                    write=bool(rng.integers(0, 2)),
                    logical=bool(rng.integers(0, 2)),
                    asynchronous=bool(rng.integers(0, 2)),
                    kind=F.DataKind(int(rng.integers(0, 4))),
                ),
                offset=offset,
                length=length,
                start_time=start,
                duration=int(rng.integers(0, 500)),
                operation_id=int(rng.integers(0, 4)),
                file_id=file_id,
                process_id=process_id,
                process_time=int(rng.integers(0, 300)),
            )
        )
        next_offset[file_id] = offset + length
        last_length[file_id] = length
    return records


@settings(max_examples=150, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 120))
def test_encode_decode_encode_byte_identical(seed, n):
    records = random_records(seed, n)
    lines = encode_records(records)
    decoded = decode_lines(lines)
    assert decoded == records
    assert encode_records(decoded) == lines  # byte-identical re-encode


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 80))
def test_roundtrip_through_trace_array(seed, n):
    records = random_records(seed, n)
    lines = encode_records(records)
    via_array = list(TraceArray.from_records(records).to_records())
    assert via_array == records
    assert encode_records(via_array) == lines


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(1, 40),
    comment_every=st.integers(1, 5),
)
def test_roundtrip_with_interleaved_comments(seed, n, comment_every):
    records = []
    for i, record in enumerate(random_records(seed, n)):
        if i % comment_every == 0:
            records.append(CommentRecord(f"file {i} = /tmp/f{i}"))
        records.append(record)
    lines = encode_records(records)
    decoded = decode_lines(lines)
    assert decoded == records
    assert encode_records(decoded) == lines


def test_generator_exercises_every_compression_flag():
    # The property tests are only as strong as the corpus: a fixed seed
    # must light up all seven compression bits.
    lines = encode_records(random_records(seed=0, n=400))
    seen = 0
    for line in lines:
        seen |= int(line.split()[1])
    assert seen == F.TRACE_COMPRESSION_MASK


def test_sequential_extension_omits_offset():
    a = TraceRecord.make(write=False, offset=1024, length=512, start_time=0)
    b = TraceRecord.make(write=False, offset=1536, length=512, start_time=10)
    lines = encode_records([a, b])
    compression = int(lines[1].split()[1])
    assert compression & F.TRACE_NO_BLOCK
    assert compression & F.TRACE_NO_LENGTH
    assert decode_lines(lines) == [a, b]


def test_same_size_different_offset_omits_length_only():
    a = TraceRecord.make(write=False, offset=0, length=777, start_time=0)
    b = TraceRecord.make(write=False, offset=9001, length=777, start_time=10)
    lines = encode_records([a, b])
    compression = int(lines[1].split()[1])
    assert compression & F.TRACE_NO_LENGTH
    assert not compression & F.TRACE_NO_BLOCK
    assert decode_lines(lines) == [a, b]


def test_block_multiples_use_in_blocks_flags():
    r = TraceRecord.make(
        write=True, offset=4 * F.TRACE_BLOCK_SIZE, length=2 * F.TRACE_BLOCK_SIZE,
        start_time=0,
    )
    (line,) = encode_records([r])
    compression = int(line.split()[1])
    assert compression & F.TRACE_OFFSET_IN_BLOCKS
    assert compression & F.TRACE_LENGTH_IN_BLOCKS
    assert line.split()[2:4] == ["4", "2"]  # stored in 512-byte blocks
    assert decode_lines([line]) == [r]


def test_encoder_stats_count_bytes():
    records = random_records(seed=7, n=50)
    encoder = TraceEncoder()
    lines = list(encoder.encode_all(records))
    assert encoder.stats.records == 50
    assert encoder.stats.bytes_written == sum(len(l) + 1 for l in lines)
