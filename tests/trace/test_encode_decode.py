"""Encoder/decoder: the delta-compressed ASCII format round-trips exactly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import flags as F
from repro.trace.decode import TraceDecoder, decode_lines
from repro.trace.encode import TraceEncoder, encode_records
from repro.trace.record import CommentRecord, TraceRecord
from repro.util.errors import TraceFormatError


def rec(
    start,
    *,
    offset=0,
    length=1024,
    write=False,
    op=0,
    fid=1,
    pid=1,
    ptime=10,
    duration=3,
    asynchronous=False,
):
    return TraceRecord.make(
        write=write,
        offset=offset,
        length=length,
        start_time=start,
        duration=duration,
        operation_id=op,
        file_id=fid,
        process_id=pid,
        process_time=ptime,
        asynchronous=asynchronous,
    )


class TestEncoder:
    def test_first_record_fully_explicit(self):
        lines = encode_records([rec(100, offset=512, length=1024, op=7)])
        parts = lines[0].split()
        # recordType, compression, offset(blocks), length(blocks), start,
        # completion, opId, fileId, processId, processTime
        assert len(parts) == 10
        compression = int(parts[1])
        assert compression == F.TRACE_OFFSET_IN_BLOCKS | F.TRACE_LENGTH_IN_BLOCKS
        assert int(parts[2]) == 1  # 512 / 512
        assert int(parts[3]) == 2  # 1024 / 512

    def test_sequential_same_size_compresses_hard(self):
        records = [
            rec(0, offset=0, length=1024, op=0),
            rec(10, offset=1024, length=1024, op=1),
            rec(20, offset=2048, length=1024, op=2),
        ]
        lines = encode_records(records, omit_operation_ids=True)
        # 2nd and 3rd records: only type, compression, start, completion,
        # processTime remain
        for line in lines[1:]:
            parts = line.split()
            assert len(parts) == 5
            compression = int(parts[1])
            assert compression & F.TRACE_NO_BLOCK
            assert compression & F.TRACE_NO_LENGTH
            assert compression & F.TRACE_NO_FILEID
            assert compression & F.TRACE_NO_PROCESSID
            assert compression & F.TRACE_NO_OPERATIONID

    def test_non_block_aligned_values_not_in_blocks(self):
        lines = encode_records([rec(0, offset=100, length=999)])
        compression = int(lines[0].split()[1])
        assert not compression & F.TRACE_OFFSET_IN_BLOCKS
        assert not compression & F.TRACE_LENGTH_IN_BLOCKS

    def test_rejects_time_going_backwards(self):
        encoder = TraceEncoder()
        encoder.encode(rec(100))
        with pytest.raises(TraceFormatError):
            encoder.encode(rec(50))

    def test_comment_encoding(self):
        encoder = TraceEncoder()
        line = encoder.encode(CommentRecord("trace of venus"))
        assert line == "255 trace of venus"
        assert encoder.stats.comments == 1

    def test_comment_rejects_newline(self):
        with pytest.raises(TraceFormatError):
            TraceEncoder().encode(CommentRecord("a\nb"))

    def test_comment_does_not_disturb_state(self):
        records = [rec(0, offset=0), CommentRecord("x"), rec(10, offset=1024)]
        lines = encode_records(records)
        # third line should still compress offset as sequential
        assert int(lines[2].split()[1]) & F.TRACE_NO_BLOCK

    def test_stats_counts(self):
        records = [
            rec(0, offset=0, length=1024),
            rec(10, offset=1024, length=1024),
        ]
        encoder = TraceEncoder(omit_operation_ids=True)
        for r in records:
            encoder.encode(r)
        s = encoder.stats
        assert s.records == 2
        assert s.omitted_offset == 1
        assert s.omitted_length == 1
        assert s.omitted_file_id == 1
        assert s.omitted_process_id == 1
        assert s.omission_rate() == pytest.approx(5 / 2)


class TestDecoder:
    def round_trip(self, records, **kw):
        lines = encode_records(records, **kw)
        return [r for r in decode_lines(lines) if isinstance(r, TraceRecord)]

    def test_simple_round_trip(self):
        records = [
            rec(5, offset=512, length=2048, op=1, fid=2, pid=3, ptime=4, duration=9),
            rec(15, offset=2560, length=2048, op=2, fid=2, pid=3, ptime=6),
            rec(30, offset=0, length=100, op=3, fid=4, pid=3, ptime=2, write=True),
        ]
        assert self.round_trip(records) == records

    def test_round_trip_interleaved_files(self):
        # venus-style interleaving across files: per-file state must be kept
        records = []
        t = 0
        for i in range(12):
            fid = i % 3 + 1
            records.append(
                rec(t, offset=(i // 3) * 4096, length=4096, op=i, fid=fid, pid=1)
            )
            t += 7
        assert self.round_trip(records) == records

    def test_round_trip_multi_process(self):
        records = []
        t = 0
        for i in range(10):
            pid = i % 2 + 10
            records.append(
                rec(t, offset=i * 512, length=512, op=i, fid=pid * 10, pid=pid)
            )
            t += 3
        assert self.round_trip(records) == records

    def test_omitted_operation_ids_reconstruct_from_file_state(self):
        records = [
            rec(0, offset=0, op=42),
            rec(10, offset=1024, op=99),
        ]
        decoded = self.round_trip(records, omit_operation_ids=True)
        # second record's op id was dropped; decoder reuses the file's last
        assert decoded[0].operation_id == 42
        assert decoded[1].operation_id == 42

    def test_decode_blank_lines_skipped(self):
        decoder = TraceDecoder()
        assert decoder.decode("") is None
        assert decoder.decode("   \n") is None

    def test_decode_comment(self):
        out = decode_lines(["255 hello there"])
        assert out == [CommentRecord("hello there")]

    def test_error_bad_record_type(self):
        with pytest.raises(TraceFormatError):
            decode_lines(["abc 0 1 2 3 4 5 6 7 8"])
        with pytest.raises(TraceFormatError):
            decode_lines(["300 0 0 1 0 0 0 0 0 0"])

    def test_error_omission_without_state(self):
        # NO_BLOCK on the very first record: no file state exists
        compression = F.TRACE_NO_BLOCK
        line = f"{F.TRACE_LOGICAL_RECORD} {compression} 1024 0 0 1 1 1 0"
        with pytest.raises(TraceFormatError):
            decode_lines([line])

    def test_error_processid_omitted_first(self):
        compression = F.TRACE_NO_PROCESSID
        line = f"{F.TRACE_LOGICAL_RECORD} {compression} 0 1024 0 0 1 1 0"
        with pytest.raises(TraceFormatError):
            decode_lines([line])

    def test_error_truncated_record(self):
        with pytest.raises(TraceFormatError):
            decode_lines([f"{F.TRACE_LOGICAL_RECORD} 0 0 1024"])

    def test_error_trailing_fields(self):
        line = f"{F.TRACE_LOGICAL_RECORD} 0 0 1024 0 0 1 1 1 0 99"
        with pytest.raises(TraceFormatError):
            decode_lines([line])

    def test_error_unknown_compression_bits(self):
        line = f"{F.TRACE_LOGICAL_RECORD} {0x10} 0 1024 0 0 1 1 1 0"
        with pytest.raises(TraceFormatError):
            decode_lines([line])

    def test_error_in_blocks_on_omitted_field(self):
        compression = F.TRACE_NO_BLOCK | F.TRACE_OFFSET_IN_BLOCKS
        line = f"{F.TRACE_LOGICAL_RECORD} {compression} 1024 0 0 1 1 1 0"
        with pytest.raises(TraceFormatError):
            decode_lines([line])

    def test_error_reports_line_number(self):
        lines = encode_records([rec(0)]) + ["garbage line here"]
        with pytest.raises(TraceFormatError, match="line 2"):
            decode_lines(lines)


# ---------------------------------------------------------------------------
# Property-based round trip
# ---------------------------------------------------------------------------

record_strategy = st.builds(
    rec,
    st.integers(0, 10**6),  # placeholder start; overwritten below
    offset=st.integers(0, 2**40),
    length=st.integers(1, 2**30),
    write=st.booleans(),
    asynchronous=st.booleans(),
    op=st.integers(0, 2**32),
    fid=st.integers(0, 200),
    pid=st.integers(0, 8),
    ptime=st.integers(0, 10**7),
    duration=st.integers(0, 10**7),
)


@st.composite
def trace_strategy(draw):
    """A well-formed trace: records with nondecreasing start times."""
    records = draw(st.lists(record_strategy, max_size=60))
    t = 0
    fixed = []
    for r in records:
        t += draw(st.integers(0, 10**6))
        fixed.append(r.replaced(start_time=t))
    return fixed


@settings(max_examples=200, deadline=None)
@given(trace_strategy(), st.booleans())
def test_round_trip_property(records, omit_ops):
    lines = encode_records(records, omit_operation_ids=omit_ops)
    decoded = [r for r in decode_lines(lines) if isinstance(r, TraceRecord)]
    assert len(decoded) == len(records)
    for original, got in zip(records, decoded):
        if omit_ops:
            got = got.replaced(operation_id=original.operation_id)
        assert got == original
