"""Batch decode and columnar-replay helpers: byte-identical to row paths.

The batch decoder (:meth:`TraceDecoder.decode_array`) and the
:class:`TraceArrayBuilder` exist purely for speed; every test here pins
them to the record-at-a-time reference output, including the error
diagnostics (a truncated line must fail identically through both
paths).
"""

import numpy as np
import pytest

from repro.trace import flags as F
from repro.trace.array import TraceArray, TraceArrayBuilder
from repro.trace.decode import TraceDecoder, decode_lines
from repro.trace.encode import TraceEncoder
from repro.trace.io import read_trace_array, write_trace_array
from repro.trace.record import TraceRecord
from repro.util.errors import TraceFormatError
from repro.util.rng import DEFAULT_SEED
from repro.workloads.base import generate_workload


@pytest.fixture(scope="module")
def venus_lines():
    workload = generate_workload("venus", scale=0.05, seed=DEFAULT_SEED)
    encoder = TraceEncoder()
    return [encoder.encode(r) for r in workload.trace.to_records()]


def _assert_arrays_equal(a: TraceArray, b: TraceArray) -> None:
    assert len(a) == len(b)
    for name, col in a.columns().items():
        other = getattr(b, name)
        assert col.dtype == other.dtype, name
        np.testing.assert_array_equal(col, other, err_msg=name)


def test_decode_array_matches_record_path(venus_lines):
    via_records = TraceArray.from_records(
        r for r in decode_lines(venus_lines) if isinstance(r, TraceRecord)
    )
    via_batch = TraceDecoder().decode_array(venus_lines)
    _assert_arrays_equal(via_batch, via_records)


def test_decode_array_skips_comments_and_blanks(venus_lines):
    noisy = [f"{F.TRACE_COMMENT} a header comment", "", *venus_lines, "  "]
    batch = TraceDecoder().decode_array(noisy)
    assert len(batch) == len(venus_lines)


def test_decode_array_errors_match_record_path():
    # Same failure, same message, same line number through both paths:
    # decode_array shares the field parser with decode().
    lines = ["8 0 4096 4096"]  # plain write, truncated before startTime
    with pytest.raises(TraceFormatError, match="truncated before") as batch:
        TraceDecoder().decode_array(lines)
    with pytest.raises(TraceFormatError, match="truncated before") as record:
        decode_lines(lines)
    assert str(batch.value) == str(record.value)


def test_decode_array_integrates_process_clocks_per_process():
    # Two interleaved processes: each one's process_clock must integrate
    # its own deltas independently, exactly like from_records.
    records = [
        TraceRecord(record_type=0, offset=0, length=512, start_time=10,
                    duration=1, operation_id=1, file_id=1, process_id=1,
                    process_time=100),
        TraceRecord(record_type=0, offset=0, length=512, start_time=20,
                    duration=1, operation_id=2, file_id=2, process_id=2,
                    process_time=7),
        TraceRecord(record_type=0, offset=512, length=512, start_time=30,
                    duration=1, operation_id=3, file_id=1, process_id=1,
                    process_time=50),
    ]
    encoder = TraceEncoder()
    lines = [encoder.encode(r) for r in records]
    batch = TraceDecoder().decode_array(lines)
    np.testing.assert_array_equal(batch.process_clock, [100, 7, 150])


def test_read_trace_array_roundtrip(tmp_path, venus_lines):
    # read_trace_array now goes through the batch decoder; the full
    # write -> read cycle must reproduce the columns bit for bit.
    workload = generate_workload("venus", scale=0.05, seed=DEFAULT_SEED)
    path = tmp_path / "venus.trace"
    write_trace_array(path, workload.trace, header_comments=["roundtrip"])
    _assert_arrays_equal(read_trace_array(path), workload.trace)


def test_builder_empty_and_dtypes():
    built = TraceArrayBuilder().build()
    assert len(built) == 0
    reference = TraceArray.empty()
    for name, col in built.columns().items():
        assert col.dtype == getattr(reference, name).dtype, name


# -- replay helpers ---------------------------------------------------------

def test_replay_columns_match_properties():
    workload = generate_workload("les", scale=0.05, seed=DEFAULT_SEED)
    trace = workload.trace
    fids, offs, lens, writes, asyncs = trace.replay_columns()
    assert fids == trace.file_id.tolist()
    assert offs == trace.offset.tolist()
    assert lens == trace.length.tolist()
    assert writes == trace.is_write.tolist()
    assert asyncs == trace.is_async.tolist()
    assert all(isinstance(w, bool) for w in writes)


def test_sequential_runs_detects_spans():
    w = F.TRACE_WRITE
    trace = TraceArray.from_columns(
        record_type=[0, 0, 0, w, w, 0, 0, 0],
        file_id=[1, 1, 1, 1, 1, 2, 1, 1],
        offset=[0, 512, 1024, 1536, 2048, 0, 4096, 4608],
        length=[512] * 8,
    )
    # rows 0-2: sequential reads of file 1
    # row 3: contiguous but direction flips read->write -> new run
    # row 4: extends the write run
    # row 5: different file -> new run
    # row 6: file 1 again but offset jumps -> new run
    # row 7: extends it
    np.testing.assert_array_equal(trace.sequential_runs(), [0, 3, 5, 6])


def test_sequential_runs_requires_same_size():
    trace = TraceArray.from_columns(
        record_type=[0, 0, 0],
        file_id=[1, 1, 1],
        offset=[0, 512, 1024],
        length=[512, 512, 256],  # contiguous, but the size changes
    )
    np.testing.assert_array_equal(trace.sequential_runs(), [0, 2])


def test_sequential_runs_empty():
    assert len(TraceArray.empty().sequential_runs()) == 0
