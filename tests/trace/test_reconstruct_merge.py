"""Adversarial tests for the epoch-by-epoch streaming merge.

The merge in :func:`iter_events_in_time_order` must be byte-identical to
the buffer-everything reference (:func:`global_sort_events`) under every
legal packet log -- including the nasty ones: events landing exactly on
an epoch watermark, ties on ``(start_time, operation_id)``, stragglers
carried across several epochs -- and must *reject* logs that violate the
collector's bounded-buffering contract instead of silently reordering.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, use_registry
from repro.trace import flags as F
from repro.trace.packets import IOEvent, TracePacket
from repro.trace.procstat import collect_to_list
from repro.trace.reconstruct import (
    _sort_key,
    events_to_records,
    global_sort_events,
    iter_events_in_time_order,
)


def ev(op, start, *, fid=1, pid=1):
    return IOEvent(
        record_type=F.TRACE_LOGICAL_RECORD,
        file_id=fid,
        process_id=pid,
        operation_id=op,
        offset=op * 1024,
        length=1024,
        start_time=start,
        duration=5,
        process_clock=0,
    )


def packet(seq, epoch, events, *, fid=1, pid=1):
    return TracePacket(
        sequence=seq, flush_epoch=epoch, process_id=pid, file_id=fid,
        events=list(events),
    )


def merged(packets):
    return list(iter_events_in_time_order(packets))


class TestEpochBoundaries:
    def test_event_exactly_on_the_watermark_is_carried_not_dropped(self):
        # Epoch 1's earliest start equals a buffered event's start: the
        # buffered event is *not* strictly older, so it must be carried
        # and tie-broken by operation id, not emitted early.
        packets = [
            packet(0, 0, [ev(5, 100), ev(7, 300)]),
            packet(1, 1, [ev(2, 100), ev(6, 200)]),
        ]
        assert [e.operation_id for e in merged(packets)] == [2, 5, 6, 7]
        assert merged(packets) == global_sort_events(packets)

    def test_watermark_emits_only_strictly_older_events(self):
        packets = [
            packet(0, 0, [ev(1, 10), ev(9, 500)]),
            packet(1, 1, [ev(2, 500)]),  # watermark 500: op 9 ties, stays
            packet(2, 2, [ev(3, 600)]),
        ]
        out = merged(packets)
        assert [e.operation_id for e in out] == [1, 2, 9, 3]
        assert out == global_sort_events(packets)

    def test_empty_epochs_between_packets(self):
        # Epoch numbers may jump (flushes with no open packets emit
        # nothing); the merge must not care.
        packets = [
            packet(0, 0, [ev(1, 10)]),
            packet(1, 5, [ev(2, 20)]),
            packet(2, 9, [ev(3, 30)]),
        ]
        assert [e.operation_id for e in merged(packets)] == [1, 2, 3]


class TestTieBreaking:
    def test_equal_start_times_order_by_operation_id(self):
        packets = [
            packet(0, 0, [ev(3, 100), ev(1, 100)]),
            packet(1, 0, [ev(2, 100), ev(0, 100)]),
        ]
        assert [e.operation_id for e in merged(packets)] == [0, 1, 2, 3]

    def test_ties_across_epochs(self):
        packets = [
            packet(0, 0, [ev(5, 100), ev(7, 300)]),
            packet(1, 1, [ev(2, 100)]),
            packet(2, 2, [ev(9, 250)]),
        ]
        out = merged(packets)
        assert [e.operation_id for e in out] == [2, 5, 9, 7]
        assert out == global_sort_events(packets)

    def test_identical_keys_keep_encounter_order(self):
        # Two *distinct* events with the same (start, op) key: stable
        # order means packet-log encounter order, same as the reference.
        a = ev(4, 100, fid=1)
        b = ev(4, 100, fid=2)
        packets = [
            packet(0, 0, [a], fid=1),
            packet(1, 0, [b], fid=2),
            packet(2, 1, [ev(5, 200)]),
        ]
        out = merged(packets)
        assert out == global_sort_events(packets)
        assert out[0] is a and out[1] is b


class TestCarryOver:
    def test_straggler_carried_across_many_epochs(self):
        # A long-running I/O recorded in epoch 0 but starting at t=1000
        # outlives three epoch boundaries before anything passes it.
        packets = [
            packet(0, 0, [ev(1, 10), ev(50, 1000)]),
            packet(1, 1, [ev(2, 20)]),
            packet(2, 2, [ev(3, 30)]),
            packet(3, 3, [ev(4, 2000)]),
        ]
        out = merged(packets)
        assert [e.operation_id for e in out] == [1, 2, 3, 50, 4]
        assert out == global_sort_events(packets)

    def test_carry_over_larger_than_one_epoch(self):
        # The buffer must be allowed to hold more than a single epoch's
        # events: epoch 0 is huge and nothing in epochs 1-2 passes it.
        packets = [
            packet(0, 0, [ev(i, 500 + i) for i in range(20)]),
            packet(1, 1, [ev(100, 500)]),
            packet(2, 2, [ev(101, 501)]),
            packet(3, 3, [ev(102, 9999)]),
        ]
        out = merged(packets)
        assert out == global_sort_events(packets)
        assert len(out) == 23

    def test_carryover_peak_gauge_reflects_buffering(self):
        reg = MetricsRegistry()
        packets = [
            packet(0, 0, [ev(i, 500 + i) for i in range(20)]),
            packet(1, 1, [ev(100, 505)]),
            packet(2, 2, [ev(102, 9999)]),
        ]
        with use_registry(reg):
            out = merged(packets)
        snap = reg.snapshot()
        assert snap["trace.reconstruct.carryover_peak"]["peak"] >= 20
        assert snap["trace.reconstruct.epochs_merged"] == 2
        assert out == global_sort_events(packets)


class TestContractViolations:
    def test_rejects_event_reaching_back_past_final_output(self):
        # op 3 surfaces two epochs after events at t >= 500 were already
        # final: emitting it would reorder the stream.
        packets = [
            packet(0, 0, [ev(1, 500)]),
            packet(1, 1, [ev(2, 600)]),
            packet(2, 2, [ev(3, 100)]),
        ]
        with pytest.raises(ValueError, match="bounded-buffering"):
            merged(packets)

    def test_rejects_violation_detected_mid_stream(self):
        packets = [
            packet(0, 0, [ev(1, 500)]),
            packet(1, 1, [ev(2, 600)]),
            packet(2, 2, [ev(3, 100)]),
            packet(3, 3, [ev(4, 9999)]),
            packet(4, 4, [ev(5, 10000)]),
        ]
        with pytest.raises(ValueError, match="bounded-buffering"):
            merged(packets)

    def test_rejects_decreasing_epochs(self):
        packets = [
            packet(0, 1, [ev(1, 10)]),
            packet(1, 0, [ev(2, 20)]),
        ]
        with pytest.raises(ValueError, match="emission order"):
            merged(packets)


class TestByteIdentity:
    def test_records_byte_identical_to_reference(self):
        # Same events through the collector, reconstructed by both
        # implementations, serialized: identical bytes.
        events = [ev(i, (i // 3) * 100, fid=i % 4) for i in range(120)]
        packets = collect_to_list(
            events, max_events_per_packet=7, flush_interval=20
        )
        streaming = merged(packets)
        reference = global_sort_events(packets)
        assert streaming == reference
        stream_bytes = repr(list(events_to_records(streaming))).encode()
        ref_bytes = repr(list(events_to_records(reference))).encode()
        assert stream_bytes == ref_bytes

    @settings(max_examples=60, deadline=None)
    @given(
        n_events=st.integers(1, 150),
        n_files=st.integers(1, 4),
        tie_width=st.integers(1, 8),
        packet_cap=st.integers(1, 20),
        flush=st.integers(1, 40),
    )
    def test_streaming_equals_global_sort_property(
        self, n_events, n_files, tie_width, packet_cap, flush
    ):
        # Nondecreasing start times with heavy ties: every legal log the
        # collector can produce must merge to exactly the reference.
        events = [
            ev(i, (i // tie_width) * 10, fid=i % n_files)
            for i in range(n_events)
        ]
        packets = collect_to_list(
            events, max_events_per_packet=packet_cap, flush_interval=flush
        )
        assert merged(packets) == global_sort_events(packets)

    def test_sort_key_is_start_then_operation(self):
        assert _sort_key(ev(2, 10)) < _sort_key(ev(1, 11))
        assert _sort_key(ev(1, 10)) < _sort_key(ev(2, 10))
