"""Trace file I/O, size accounting and stream validation."""

import pytest

from repro.trace.array import TraceArray
from repro.trace.io import (
    read_comments,
    read_io_records,
    read_trace_array,
    write_trace,
    write_trace_array,
)
from repro.trace.record import CommentRecord, TraceRecord
from repro.trace.stats import BINARY_RECORD_BYTES, measure_trace_sizes
from repro.trace.validate import validate_array, validate_records
from repro.util.errors import TraceFormatError


def sequential_records(n=50, length=4096):
    out = []
    for i in range(n):
        out.append(
            TraceRecord.make(
                write=False,
                offset=i * length,
                length=length,
                start_time=i * 100,
                duration=10,
                operation_id=i,
                file_id=1,
                process_id=1,
                process_time=80,
            )
        )
    return out


class TestFileIO:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "t.trace"
        records = sequential_records()
        stats = write_trace(path, records, header_comments=["venus trace"])
        assert stats.records == len(records)
        back = list(read_io_records(path))
        assert back == records
        comments = read_comments(path)
        assert comments == [CommentRecord("venus trace")]

    def test_array_round_trip(self, tmp_path):
        path = tmp_path / "t.trace"
        arr = TraceArray.from_records(sequential_records())
        write_trace_array(path, arr)
        back = read_trace_array(path)
        assert list(back.to_records()) == list(arr.to_records())


class TestSizes:
    def test_compression_shrinks_sequential_trace(self):
        records = sequential_records(200)
        report = measure_trace_sizes(records)
        assert report.n_records == 200
        assert report.compression_ratio > 1.8
        assert report.bytes_per_record < 20

    def test_ascii_beats_binary_on_sequential_traces(self):
        # The appendix's claim: text traces were *shorter* than binary.
        records = sequential_records(500)
        report = measure_trace_sizes(records)
        assert report.binary_bytes == 500 * BINARY_RECORD_BYTES
        assert report.ascii_vs_binary_ratio > 1.0

    def test_empty_trace(self):
        report = measure_trace_sizes([])
        assert report.compression_ratio == 0.0
        assert report.ascii_vs_binary_ratio == 0.0
        assert report.bytes_per_record == 0.0


class TestValidation:
    def test_valid_stream(self):
        report = validate_records(sequential_records())
        assert report.ok
        report.raise_if_failed()

    def test_detects_zero_length(self):
        bad = sequential_records(3)
        bad[1] = bad[1].replaced(length=0)
        report = validate_records(bad)
        assert not report.ok
        assert "length" in report.problems[0]
        with pytest.raises(TraceFormatError):
            report.raise_if_failed()

    def test_detects_time_reversal(self):
        recs = sequential_records(3)
        recs[2] = recs[2].replaced(start_time=recs[1].start_time - 50)
        report = validate_records(recs)
        assert any("precedes" in p for p in report.problems)

    def test_detects_cpu_clock_overrun(self):
        # Process claims 1000 ticks of CPU between I/Os only 100 wall
        # ticks apart: impossible on one CPU.
        recs = [
            TraceRecord.make(
                write=False, offset=0, length=1, start_time=0,
                operation_id=0, file_id=1, process_id=1, process_time=0,
            ),
            TraceRecord.make(
                write=False, offset=1, length=1, start_time=100,
                operation_id=1, file_id=1, process_id=1, process_time=1000,
            ),
        ]
        report = validate_records(recs)
        assert any("CPU clock" in p for p in report.problems)

    def test_array_validation_matches(self):
        arr = TraceArray.from_records(sequential_records())
        assert validate_array(arr).ok

    def test_array_validation_detects_problems(self):
        arr = TraceArray.from_columns(
            length=[100, 100],
            start_time=[100, 0],
            process_clock=[1, 2],
            process_id=[1, 1],
        )
        report = validate_array(arr)
        assert any("nondecreasing" in p for p in report.problems)

    def test_array_validation_cpu_overrun(self):
        arr = TraceArray.from_columns(
            length=[1, 1],
            start_time=[0, 10],
            process_clock=[0, 5000],
            process_id=[1, 1],
        )
        report = validate_array(arr)
        assert any("CPU clock" in p for p in report.problems)
