"""Columnar TraceArray: construction, filters, conversions."""

import numpy as np
import pytest

from repro.trace import flags as F
from repro.trace.array import TraceArray
from repro.trace.record import TraceRecord


def simple_records():
    out = []
    t = 0
    for i in range(6):
        out.append(
            TraceRecord.make(
                write=i % 2 == 1,
                offset=i * 1024,
                length=1024,
                start_time=t,
                duration=2,
                operation_id=i,
                file_id=1 + i % 2,
                process_id=7,
                process_time=10,
            )
        )
        t += 100
    return out


class TestConstruction:
    def test_empty(self):
        t = TraceArray.empty()
        assert len(t) == 0
        assert t.total_bytes == 0
        assert t.wall_seconds() == 0.0

    def test_from_records_integrates_process_clock(self):
        arr = TraceArray.from_records(simple_records())
        assert len(arr) == 6
        np.testing.assert_array_equal(
            arr.process_clock, [10, 20, 30, 40, 50, 60]
        )

    def test_from_columns_defaults(self):
        arr = TraceArray.from_columns(length=[100, 200], start_time=[0, 5])
        assert len(arr) == 2
        assert arr.total_bytes == 300
        np.testing.assert_array_equal(arr.file_id, [0, 0])

    def test_from_columns_rejects_mismatched(self):
        with pytest.raises(ValueError):
            TraceArray.from_columns(length=[1, 2], offset=[1])
        with pytest.raises(TypeError):
            TraceArray.from_columns(bogus=[1])

    def test_round_trip_records(self):
        records = simple_records()
        arr = TraceArray.from_records(records)
        assert list(arr.to_records()) == records


class TestViews:
    def test_read_write_split(self):
        arr = TraceArray.from_records(simple_records())
        assert len(arr.reads()) == 3
        assert len(arr.writes()) == 3
        assert arr.read_bytes + arr.write_bytes == arr.total_bytes

    def test_for_file(self):
        arr = TraceArray.from_records(simple_records())
        f1 = arr.for_file(1)
        assert len(f1) == 3
        assert set(f1.file_id.tolist()) == {1}

    def test_getitem_mask_and_slice(self):
        arr = TraceArray.from_records(simple_records())
        assert len(arr[arr.length > 0]) == 6
        assert len(arr[2:4]) == 2
        single = arr[3]
        assert len(single) == 1

    def test_sorted_by_start(self):
        arr = TraceArray.from_columns(
            start_time=[50, 10, 30], length=[1, 2, 3], process_clock=[3, 1, 2]
        )
        s = arr.sorted_by_start()
        np.testing.assert_array_equal(s.start_time, [10, 30, 50])
        np.testing.assert_array_equal(s.length, [2, 3, 1])

    def test_concatenate(self):
        a = TraceArray.from_records(simple_records())
        b = TraceArray.from_records(simple_records())
        c = TraceArray.concatenate([a, b])
        assert len(c) == 12
        assert TraceArray.concatenate([]).total_bytes == 0


class TestAggregates:
    def test_clocks(self):
        arr = TraceArray.from_records(simple_records())
        assert arr.cpu_seconds() == pytest.approx(60 * 1e-5)
        assert arr.wall_seconds() == pytest.approx((500 + 2) * 1e-5)

    def test_ids(self):
        arr = TraceArray.from_records(simple_records())
        np.testing.assert_array_equal(arr.file_ids(), [1, 2])
        np.testing.assert_array_equal(arr.process_ids(), [7])

    def test_process_time_deltas_multi_process(self):
        arr = TraceArray.from_columns(
            process_id=[1, 2, 1, 2],
            process_clock=[10, 5, 25, 11],
            length=[1, 1, 1, 1],
            start_time=[0, 1, 2, 3],
        )
        np.testing.assert_array_equal(
            arr.process_time_deltas(), [10, 5, 15, 6]
        )

    def test_process_time_deltas_rejects_backwards_clock(self):
        arr = TraceArray.from_columns(
            process_id=[1, 1],
            process_clock=[10, 5],
            length=[1, 1],
            start_time=[0, 1],
        )
        with pytest.raises(ValueError):
            arr.process_time_deltas()

    def test_with_process_id_and_shifted(self):
        arr = TraceArray.from_records(simple_records())
        relabeled = arr.with_process_id(99)
        assert set(relabeled.process_ids().tolist()) == {99}
        shifted = arr.shifted(1000)
        np.testing.assert_array_equal(
            shifted.start_time, arr.start_time + 1000
        )
        # original untouched
        assert arr.start_time[0] == 0
