"""Property tests pinning the vectorized decoder to the scalar one.

The NumPy fast path (:mod:`repro.trace.decode_fast`) is an optimization,
not a second implementation of the format: on any input it accepts it
must produce *byte-identical* columns and leave the decoder holding
*exactly* the reconstruction state the scalar loop would have, and on
any input it rejects the scalar loop must take over wholesale and raise
the very same diagnostics.  Hypothesis drives both directions here --
generated valid streams for the equivalence half, seeded mutations for
the rejection-parity half -- and the observability counters are used to
prove which path actually ran (a vacuous pass through the fallback would
prove nothing about the fast path).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import MetricsRegistry, use_registry
from repro.trace import flags as F
from repro.trace.array import TraceArray
from repro.trace.decode import TraceDecoder
from repro.trace.encode import TraceEncoder
from repro.trace.record import CommentRecord, TraceRecord
from repro.util.errors import TraceFormatError
from tests.trace.test_roundtrip_fuzz import random_records

VECTORIZED = "trace.decode.vectorized_lines"
FALLBACK = "trace.decode.scalar_fallback_lines"


def _scalar_reference(lines):
    """Record-at-a-time decode: the ground truth columns and state."""
    decoder = TraceDecoder()
    records = [
        r for r in decoder.decode_all(lines) if isinstance(r, TraceRecord)
    ]
    return TraceArray.from_records(records), decoder


def _assert_columns_equal(a: TraceArray, b: TraceArray) -> None:
    assert len(a) == len(b)
    for name, col in a.columns().items():
        other = getattr(b, name)
        assert col.dtype == other.dtype, name
        np.testing.assert_array_equal(col, other, err_msg=name)


def _assert_state_equal(a: TraceDecoder, b: TraceDecoder) -> None:
    assert a._prev_start == b._prev_start
    assert a._prev_process == b._prev_process
    assert a._file_of_process == b._file_of_process
    assert a._files == b._files
    assert a._line_number == b._line_number


@settings(max_examples=75, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(1, 80),
    omit_ops=st.booleans(),
    with_comment=st.booleans(),
    form=st.sampled_from(["list", "str", "bytes"]),
)
def test_vectorized_decode_byte_identical(seed, n, omit_ops, with_comment, form):
    encoder = TraceEncoder(omit_operation_ids=omit_ops)
    lines = []
    if with_comment:
        lines.append(encoder.encode(CommentRecord(f"fuzz seed={seed}")))
    lines.extend(encoder.encode(r) for r in random_records(seed, n))
    reference, ref_decoder = _scalar_reference(lines)

    if form == "list":
        doc = list(lines)
    elif form == "str":
        doc = "\n".join(lines) + "\n"
    else:
        doc = ("\n".join(lines) + "\n").encode("ascii")

    registry = MetricsRegistry()
    decoder = TraceDecoder()
    with use_registry(registry):
        decoded = decoder.decode_array(doc)

    # The fast path must actually have run -- the counters are the proof.
    assert registry.counter(VECTORIZED).value == len(lines)
    assert registry.counter(FALLBACK).value == 0
    _assert_columns_equal(decoded, reference)
    _assert_state_equal(decoder, ref_decoder)


# A tiny hand-built stream whose token layout is known, so mutations can
# target specific fields.  Line 1 is a full record; line 2 compresses.
def _base_lines():
    encoder = TraceEncoder()
    records = [
        TraceRecord(record_type=F.TRACE_WRITE, offset=0, length=512,
                    start_time=10, duration=3, operation_id=1, file_id=1,
                    process_id=1, process_time=5),
        TraceRecord(record_type=F.TRACE_WRITE, offset=512, length=512,
                    start_time=20, duration=3, operation_id=1, file_id=1,
                    process_id=1, process_time=5),
    ]
    return [encoder.encode(r) for r in records]


def _set_field(line: str, index: int, value: str) -> str:
    parts = line.split(" ")
    parts[index] = value
    return " ".join(parts)


def _negate_start_delta(line: str) -> str:
    # startTime's position depends on which leading fields the
    # compression flags omitted; recompute it from the line itself.
    parts = line.split(" ")
    comp = int(parts[1])
    index = 2
    if not comp & F.TRACE_NO_BLOCK:
        index += 1
    if not comp & F.TRACE_NO_LENGTH:
        index += 1
    return _set_field(line, index, "-7")


_MUTATIONS = {
    "truncated": lambda line: line.rsplit(" ", 1)[0],
    "non_integer": lambda line: line + " x",
    "tab_separator": lambda line: line.replace(" ", "\t", 1),
    "bad_record_type": lambda line: "999 " + line.split(" ", 1)[1],
    "bad_compression": lambda line: _set_field(line, 1, "16"),
    "negative_start_delta": _negate_start_delta,
    "trailing_field": lambda line: line + " 1 2 3",
}


@pytest.mark.parametrize("name", sorted(_MUTATIONS))
@pytest.mark.parametrize("target", [0, 1])
def test_malformed_rejection_parity(name, target):
    # Any grammar or semantic deviation must route to the scalar loop,
    # which raises the same error (message and line number) the
    # record-at-a-time path does.
    lines = _base_lines()
    lines[target] = _MUTATIONS[name](lines[target])

    with pytest.raises(TraceFormatError) as scalar_err:
        _scalar_reference(lines)

    registry = MetricsRegistry()
    with use_registry(registry):
        with pytest.raises(TraceFormatError) as batch_err:
            TraceDecoder().decode_array(lines)

    assert str(batch_err.value) == str(scalar_err.value)
    assert registry.counter(VECTORIZED).value == 0


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(2, 40),
    target_frac=st.floats(0.0, 1.0),
    name=st.sampled_from(sorted(_MUTATIONS)),
)
def test_malformed_rejection_parity_fuzzed(seed, n, target_frac, name):
    # Same parity property, but over generated streams with the mutation
    # landing on an arbitrary line.
    encoder = TraceEncoder()
    lines = [encoder.encode(r) for r in random_records(seed, n)]
    target = min(int(target_frac * len(lines)), len(lines) - 1)
    lines[target] = _MUTATIONS[name](lines[target])

    with pytest.raises(TraceFormatError) as scalar_err:
        _scalar_reference(lines)
    with pytest.raises(TraceFormatError) as batch_err:
        TraceDecoder().decode_array(lines)
    assert str(batch_err.value) == str(scalar_err.value)


def test_multi_space_separator_matches():
    # Extra spaces between tokens are legal for the scalar parser
    # (str.split); whichever path handles them, output must match.
    lines = _base_lines()
    lines[0] = lines[0].replace(" ", "  ", 1)
    reference, _ = _scalar_reference(lines)
    _assert_columns_equal(TraceDecoder().decode_array(lines), reference)


def test_indented_comment_falls_back_and_matches():
    # A comment line with leading whitespace is outside the encoder
    # grammar (comment detection keys on a "255 " line prefix): the
    # whole document must be re-decoded scalar, with identical output.
    lines = [" 255 an indented comment", *_base_lines()]
    reference, _ = _scalar_reference(lines)

    registry = MetricsRegistry()
    with use_registry(registry):
        decoded = TraceDecoder().decode_array(lines)

    assert registry.counter(VECTORIZED).value == 0
    assert registry.counter(FALLBACK).value == len(lines)
    _assert_columns_equal(decoded, reference)


def test_trailing_newline_variants_equal():
    lines = _base_lines()
    reference, _ = _scalar_reference(lines)
    doc = "\n".join(lines)
    for variant in (doc, doc + "\n", doc + "\n\n"):
        for raw in (variant, variant.encode("ascii")):
            _assert_columns_equal(
                TraceDecoder().decode_array(raw), reference
            )


def test_stale_decoder_never_takes_fast_path():
    # The fast path assumes pristine reconstruction state; a decoder
    # that has already consumed lines must stay on the scalar loop.
    lines = _base_lines()
    decoder = TraceDecoder()
    decoder.decode(lines[0])
    registry = MetricsRegistry()
    with use_registry(registry):
        decoder.decode_array(lines[1:])
    assert registry.counter(VECTORIZED).value == 0
    assert registry.counter(FALLBACK).value == 1
