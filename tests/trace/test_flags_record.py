"""Record-type flags and the TraceRecord model."""

import pytest

from repro.trace import flags as F
from repro.trace.record import (
    CommentRecord,
    TraceRecord,
    file_name_comment,
    parse_file_name_comment,
)


class TestFlags:
    def test_values_match_iotrace_h(self):
        assert F.TRACE_FILE_DATA == 0x0
        assert F.TRACE_META_DATA == 0x1
        assert F.TRACE_READAHEAD == 0x2
        assert F.TRACE_VIRTUAL_MEM == 0x3
        assert F.TRACE_LOGICAL_RECORD == 0x80
        assert F.TRACE_WRITE == 0x40
        assert F.TRACE_ASYNC == 0x08
        assert F.TRACE_CACHE_MISS == 0x20
        assert F.TRACE_RA_HIT == 0x10
        assert F.TRACE_COMMENT == 0xFF
        assert F.TRACE_OFFSET_IN_BLOCKS == 0x01
        assert F.TRACE_LENGTH_IN_BLOCKS == 0x02
        assert F.TRACE_BLOCK_SIZE == 512
        assert F.TRACE_NO_LENGTH == 0x04
        assert F.TRACE_NO_PROCESSID == 0x08
        assert F.TRACE_NO_OPERATIONID == 0x20
        assert F.TRACE_NO_BLOCK == 0x40
        assert F.TRACE_NO_FILEID == 0x80

    def test_make_record_type_composition(self):
        rt = F.make_record_type(write=True, logical=True, asynchronous=True)
        assert F.is_write(rt)
        assert F.is_logical(rt)
        assert F.is_async(rt)
        assert F.data_kind(rt) == F.DataKind.FILE_DATA
        assert not F.is_cache_miss(rt)

    def test_make_record_type_kinds(self):
        rt = F.make_record_type(kind=F.DataKind.READAHEAD, logical=False)
        assert F.data_kind(rt) == F.DataKind.READAHEAD
        assert not F.is_logical(rt)

    def test_cache_annotations(self):
        rt = F.make_record_type(cache_miss=True, readahead_hit=True)
        assert F.is_cache_miss(rt)
        assert F.is_readahead_hit(rt)

    def test_describe(self):
        rt = F.make_record_type(write=True)
        assert F.describe_record_type(rt) == "logical|write|sync|file_data"
        assert F.describe_record_type(F.TRACE_COMMENT) == "comment"


class TestTraceRecord:
    def make(self, **kw):
        defaults = dict(
            write=False,
            offset=0,
            length=1024,
            start_time=100,
            duration=5,
            operation_id=1,
            file_id=1,
            process_id=1,
            process_time=50,
        )
        defaults.update(kw)
        return TraceRecord.make(**defaults)

    def test_properties(self):
        r = self.make(write=True, asynchronous=True, offset=512, length=1024)
        assert r.is_write and not r.is_read
        assert r.is_async
        assert r.is_logical
        assert r.end_offset == 1536
        assert r.completion_time == 105

    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            self.make(offset=-1)
        with pytest.raises(ValueError):
            self.make(length=-1)
        with pytest.raises(ValueError):
            self.make(duration=-1)
        with pytest.raises(ValueError):
            self.make(process_time=-1)

    def test_comment_type_rejected_in_trace_record(self):
        with pytest.raises(ValueError):
            TraceRecord(
                record_type=F.TRACE_COMMENT,
                offset=0,
                length=1,
                start_time=0,
                duration=0,
                operation_id=0,
                file_id=0,
                process_id=0,
                process_time=0,
            )

    def test_replaced(self):
        r = self.make()
        r2 = r.replaced(offset=4096)
        assert r2.offset == 4096
        assert r.offset == 0  # original untouched (frozen)

    def test_file_name_comments(self):
        c = file_name_comment(3, "/scratch/venus/data1")
        assert parse_file_name_comment(c) == (3, "/scratch/venus/data1")
        assert parse_file_name_comment(CommentRecord("hello world")) is None
        assert parse_file_name_comment(CommentRecord("file x = y")) is None
        assert CommentRecord("x").record_type == F.TRACE_COMMENT
