"""Batch queue simulation and the venus design tradeoff."""

import pytest

from repro.batch import (
    BatchSimulator,
    Job,
    QueueConfig,
    default_queues,
    venus_design_tradeoff,
)
from repro.util.errors import SimulationError


class TestConfigs:
    def test_queue_validation(self):
        with pytest.raises(ValueError):
            QueueConfig("bad", memory_limit_mw=0, space_mw=10)
        with pytest.raises(ValueError):
            QueueConfig("bad", memory_limit_mw=16, space_mw=8)

    def test_job_validation(self):
        with pytest.raises(ValueError):
            Job("j", memory_mw=0, cpu_seconds=10)
        with pytest.raises(ValueError):
            Job("j", memory_mw=1, cpu_seconds=0)
        with pytest.raises(ValueError):
            Job("j", memory_mw=1, cpu_seconds=1, duty=0.0)

    def test_queue_routing(self):
        sim = BatchSimulator()
        assert sim.queue_for(Job("a", 2, 10)).name == "small"
        assert sim.queue_for(Job("b", 10, 10)).name == "medium"
        assert sim.queue_for(Job("c", 60, 10)).name == "large"
        with pytest.raises(SimulationError):
            sim.queue_for(Job("d", 100, 10))

    def test_simulator_validation(self):
        with pytest.raises(SimulationError):
            BatchSimulator(n_cpus=0)
        with pytest.raises(SimulationError):
            BatchSimulator(queues=[])


class TestScheduling:
    def test_single_job_runs_at_full_rate(self):
        sim = BatchSimulator(n_cpus=8)
        out = sim.run([Job("j", memory_mw=4, cpu_seconds=100)])
        assert out["j"].queue_wait == 0.0
        assert out["j"].residency == pytest.approx(100.0)

    def test_duty_stretches_residency(self):
        sim = BatchSimulator(n_cpus=8)
        out = sim.run([Job("j", memory_mw=4, cpu_seconds=100, duty=0.5)])
        assert out["j"].residency == pytest.approx(200.0)

    def test_processor_sharing_when_oversubscribed(self):
        # 4 identical jobs on 2 CPUs: each progresses at rate 1/2.
        sim = BatchSimulator(
            queues=[QueueConfig("q", memory_limit_mw=4, space_mw=64)],
            n_cpus=2,
        )
        jobs = [Job(f"j{i}", memory_mw=4, cpu_seconds=100) for i in range(4)]
        out = sim.run(jobs)
        for o in out.values():
            assert o.residency == pytest.approx(200.0)

    def test_memory_space_gates_admission(self):
        # Queue holds 8 MW; two 8 MW jobs must run back to back.
        sim = BatchSimulator(
            queues=[QueueConfig("q", memory_limit_mw=8, space_mw=8)],
            n_cpus=8,
        )
        jobs = [
            Job("first", memory_mw=8, cpu_seconds=100),
            Job("second", memory_mw=8, cpu_seconds=100),
        ]
        out = sim.run(jobs)
        waits = sorted(o.queue_wait for o in out.values())
        assert waits[0] == 0.0
        assert waits[1] == pytest.approx(100.0)

    def test_fifo_within_queue(self):
        sim = BatchSimulator(
            queues=[QueueConfig("q", memory_limit_mw=8, space_mw=8)],
            n_cpus=8,
        )
        jobs = [
            Job("a", memory_mw=8, cpu_seconds=50, arrival=0.0),
            Job("b", memory_mw=8, cpu_seconds=50, arrival=1.0),
            Job("c", memory_mw=8, cpu_seconds=50, arrival=2.0),
        ]
        out = sim.run(jobs)
        assert out["a"].finish < out["b"].finish < out["c"].finish

    def test_queues_independent(self):
        # A stuffed large queue does not delay a small job.
        sim = BatchSimulator(n_cpus=8)
        jobs = [
            Job(f"big{i}", memory_mw=60, cpu_seconds=500, arrival=0.0)
            for i in range(3)
        ] + [Job("tiny", memory_mw=1, cpu_seconds=10, arrival=5.0)]
        out = sim.run(jobs)
        assert out["tiny"].queue_wait == 0.0

    def test_arrivals_during_service(self):
        sim = BatchSimulator(n_cpus=1)
        jobs = [
            Job("a", memory_mw=2, cpu_seconds=100, arrival=0.0),
            Job("b", memory_mw=2, cpu_seconds=100, arrival=50.0),
        ]
        out = sim.run(jobs)
        # a runs alone for 50 s (50 s of work left), then shares at rate
        # 1/2 for 100 s: finishes at 150 s.  b accrues 50 s of work by
        # then and runs alone to finish at 200 s.
        assert out["a"].finish == pytest.approx(150.0)
        assert out["b"].finish == pytest.approx(200.0)

    def test_duplicate_names_rejected(self):
        sim = BatchSimulator()
        with pytest.raises(SimulationError):
            sim.run([Job("x", 1, 1), Job("x", 1, 1)])

    def test_turnaround_decomposition(self):
        sim = BatchSimulator()
        out = sim.run([Job("j", memory_mw=4, cpu_seconds=10, arrival=5.0)])
        o = out["j"]
        assert o.turnaround == pytest.approx(o.queue_wait + o.residency)


class TestVenusTradeoff:
    def test_small_memory_wins_under_load(self):
        result = venus_design_tradeoff()
        assert result.small.queue == "small"
        assert result.big.queue == "large"
        # the paper's incentive: staged version starts much sooner...
        assert result.small.queue_wait < result.big.queue_wait
        # ...runs longer once resident (staging overhead + lower duty)...
        assert result.small.residency > result.big.residency
        # ...and still wins on turnaround, decisively.
        assert result.small_wins
        assert result.speedup > 2.0

    def test_unloaded_machine_prefers_big_memory(self):
        # Without background load, the in-memory version wins: staging
        # is pure overhead.
        result = venus_design_tradeoff(background_large_jobs=0)
        assert not result.small_wins

    def test_deterministic(self):
        a = venus_design_tradeoff(seed=3)
        b = venus_design_tradeoff(seed=3)
        assert a.big.finish == b.big.finish
        assert a.small.finish == b.small.finish
