"""Tables, ASCII plots and deterministic RNG derivation."""

import numpy as np
import pytest

from repro.util.asciiplot import ascii_bar_plot, ascii_line_plot, sparkline
from repro.util.rng import derive_rng, derive_seed, make_rng
from repro.util.tables import TextTable, format_si, format_table, paper_vs_measured


class TestTables:
    def test_render_alignment(self):
        t = TextTable(["app", "MB/s"], title="Table 1")
        t.add_row(["venus", 44.1])
        t.add_row(["gcm", 0.14])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "Table 1"
        assert "venus" in out and "44.1" in out
        # all body lines same width
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_row_length_checked(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_format_table_oneshot(self):
        out = format_table(["x"], [[1], [2]])
        assert out.count("\n") == 3

    def test_format_si(self):
        assert format_si(0) == "0"
        assert format_si(1234567) == "1,234,567"
        assert format_si(44.1) == "44.1"
        assert format_si(0.016) == "0.016"
        assert format_si(1234.5) == "1,234"

    def test_paper_vs_measured(self):
        line = paper_vs_measured("venus MB/s", 44.1, 46.0, "MB/s")
        assert "x1.04" in line
        assert "44.1" in line and "46" in line


class TestAsciiPlot:
    def test_sparkline_preserves_peak(self):
        values = [0.0] * 100
        values[50] = 10.0
        line = sparkline(values, width=20)
        assert len(line) == 20
        assert "@" in line  # peak level survives downsampling

    def test_sparkline_empty_and_flat(self):
        assert sparkline([]) == ""
        assert set(sparkline([0, 0, 0])) == {" "}

    def test_line_plot_structure(self):
        out = ascii_line_plot([0, 1, 2, 3], [0, 5, 1, 3], width=20, height=5, title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert "peak=5" in lines[1]
        assert any("*" in line for line in lines)

    def test_line_plot_validates(self):
        with pytest.raises(ValueError):
            ascii_line_plot([0, 1], [1], width=10, height=3)
        assert ascii_line_plot([], []) == "(empty plot)"

    def test_bar_plot(self):
        out = ascii_bar_plot(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].endswith("1")
        assert lines[1].count("#") == 10

    def test_bar_plot_validates(self):
        with pytest.raises(ValueError):
            ascii_bar_plot(["a"], [1.0, 2.0])
        assert ascii_bar_plot([], []) == "(empty plot)"


class TestRng:
    def test_default_seed_reproducible(self):
        a = make_rng().random(5)
        b = make_rng().random(5)
        np.testing.assert_array_equal(a, b)

    def test_derive_seed_stable_and_distinct(self):
        s1 = derive_seed(1, "venus/0")
        s2 = derive_seed(1, "venus/1")
        s3 = derive_seed(2, "venus/0")
        assert s1 == derive_seed(1, "venus/0")
        assert len({s1, s2, s3}) == 3

    def test_derive_rng_streams_differ(self):
        a = derive_rng(7, "x").random(4)
        b = derive_rng(7, "y").random(4)
        assert not np.array_equal(a, b)
