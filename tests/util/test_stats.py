"""OnlineStats, Histogram and scalar helpers."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    Histogram,
    OnlineStats,
    geometric_mean,
    percentile,
    weighted_mean,
)


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.n == 0
        assert s.mean == 0.0
        assert s.stdev == 0.0
        assert s.min == 0.0 and s.max == 0.0

    def test_single_sample(self):
        s = OnlineStats()
        s.add(42.0)
        assert s.n == 1
        assert s.mean == 42.0
        assert s.variance == 0.0
        assert s.min == 42.0 and s.max == 42.0
        assert s.total == 42.0

    def test_matches_numpy(self):
        data = [3.0, 1.5, -2.0, 8.25, 0.0, 4.0]
        s = OnlineStats()
        s.extend(data)
        assert s.mean == pytest.approx(np.mean(data))
        assert s.variance == pytest.approx(np.var(data))
        assert s.min == min(data)
        assert s.max == max(data)
        assert s.total == pytest.approx(sum(data))

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_welford_agrees_with_numpy(self, data):
        s = OnlineStats()
        s.extend(data)
        assert s.mean == pytest.approx(np.mean(data), abs=1e-6, rel=1e-6)
        assert s.variance == pytest.approx(np.var(data), abs=1e-4, rel=1e-4)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=50),
        st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=50),
    )
    def test_merge_equals_sequential(self, a, b):
        s1 = OnlineStats()
        s1.extend(a)
        s2 = OnlineStats()
        s2.extend(b)
        s1.merge(s2)
        ref = OnlineStats()
        ref.extend(a + b)
        assert s1.n == ref.n
        assert s1.mean == pytest.approx(ref.mean, abs=1e-6)
        assert s1.variance == pytest.approx(ref.variance, abs=1e-3, rel=1e-3)
        assert s1.total == pytest.approx(ref.total, abs=1e-6)

    def test_merge_into_empty(self):
        s1 = OnlineStats()
        s2 = OnlineStats()
        s2.extend([1.0, 2.0])
        s1.merge(s2)
        assert s1.n == 2
        assert s1.mean == pytest.approx(1.5)


class TestHistogram:
    def test_basic_binning(self):
        h = Histogram(0.0, 10.0, 10)
        h.add(0.5)
        h.add(9.5)
        h.add(5.0)
        assert h.total == 3
        assert h.counts[0] == 1
        assert h.counts[9] == 1
        assert h.counts[5] == 1

    def test_out_of_range_saturates(self):
        h = Histogram(0.0, 10.0, 10)
        h.add(-5.0)
        h.add(100.0)
        assert h.counts[0] == 1
        assert h.counts[-1] == 1
        assert h.total == 2

    def test_weighted(self):
        h = Histogram(0.0, 1.0, 2)
        h.add(0.1, weight=5)
        assert h.total == 5

    def test_mode_bin(self):
        h = Histogram(0.0, 10.0, 10)
        for _ in range(3):
            h.add(7.5)
        h.add(1.0)
        lo, hi = h.mode_bin()
        assert lo == pytest.approx(7.0)
        assert hi == pytest.approx(8.0)

    def test_fraction_in(self):
        h = Histogram(0.0, 10.0, 10)
        for v in [1.5, 2.5, 8.5]:
            h.add(v)
        assert h.fraction_in(0.0, 5.0) == pytest.approx(2 / 3)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            Histogram(5.0, 5.0, 10)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, 0)

    @given(st.lists(st.floats(-100, 100), max_size=100))
    def test_total_conserved(self, data):
        h = Histogram(-10.0, 10.0, 7)
        h.extend(data)
        assert h.total == len(data)


def test_weighted_mean():
    assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == pytest.approx(2.0)
    assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)
    assert weighted_mean([], []) == 0.0
    assert weighted_mean([1.0], [0.0]) == 0.0


def test_percentile():
    assert percentile([1, 2, 3, 4, 5], 50) == pytest.approx(3.0)
    assert percentile([], 50) == 0.0
    assert percentile([7.0], 99) == pytest.approx(7.0)


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([]) == 0.0
    with pytest.raises(ValueError):
        geometric_mean([1.0, -1.0])
    assert geometric_mean([10.0] * 5) == pytest.approx(10.0)
    assert not math.isnan(geometric_mean([1e-6, 1e6]))
