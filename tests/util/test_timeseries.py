"""BinnedSeries and RateSeries: the figures' underlying data structure."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.timeseries import BinnedSeries, RateSeries


class TestBinnedSeries:
    def test_basic_accumulation(self):
        s = BinnedSeries(1.0)
        s.add(0.5, 10.0)
        s.add(0.7, 5.0)
        s.add(2.1, 1.0)
        assert s.n_bins == 3
        np.testing.assert_allclose(s.values(), [15.0, 0.0, 1.0])
        assert s.total == pytest.approx(16.0)

    def test_grows_on_demand(self):
        s = BinnedSeries(1.0)
        s.add(100.5, 1.0)
        assert s.n_bins == 101
        assert s.values()[100] == 1.0

    def test_rejects_pre_origin(self):
        s = BinnedSeries(1.0, t0=10.0)
        with pytest.raises(ValueError):
            s.add(9.0)
        s.add(10.0)  # boundary ok
        assert s.n_bins == 1

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            BinnedSeries(0.0)

    def test_times_are_left_edges(self):
        s = BinnedSeries(2.0, t0=1.0)
        s.add(6.9)
        np.testing.assert_allclose(s.times(), [1.0, 3.0, 5.0])

    def test_add_spread_conserves_weight(self):
        s = BinnedSeries(1.0)
        s.add_spread(0.5, 3.5, 30.0)
        assert s.total == pytest.approx(30.0)
        # 0.5s in bin0, 1s each in bins 1 & 2, 0.5s in bin3
        np.testing.assert_allclose(s.values(), [5.0, 10.0, 10.0, 5.0])

    def test_add_spread_zero_duration(self):
        s = BinnedSeries(1.0)
        s.add_spread(1.5, 1.5, 7.0)
        assert s.values()[1] == pytest.approx(7.0)

    def test_add_spread_rejects_reversed(self):
        s = BinnedSeries(1.0)
        with pytest.raises(ValueError):
            s.add_spread(2.0, 1.0, 1.0)

    @given(
        st.lists(
            st.tuples(st.floats(0, 50), st.floats(0.01, 20), st.floats(0, 100)),
            max_size=30,
        )
    )
    def test_spread_total_conserved(self, intervals):
        s = BinnedSeries(0.7)
        expected = 0.0
        for t0, dur, w in intervals:
            s.add_spread(t0, t0 + dur, w)
            expected += w
        assert s.total == pytest.approx(expected, abs=1e-6, rel=1e-9)


class TestRateSeries:
    def _series(self):
        return RateSeries.from_events(
            ts=[0.1, 0.2, 1.5, 3.9], weights=[10, 10, 5, 1], bin_width=1.0
        )

    def test_rates(self):
        r = self._series()
        np.testing.assert_allclose(r.rates, [20.0, 5.0, 0.0, 1.0])
        assert r.peak == 20.0
        assert r.mean == pytest.approx(6.5)
        assert r.total == pytest.approx(26.0)
        assert r.duration == pytest.approx(4.0)

    def test_burstiness(self):
        r = self._series()
        assert r.burstiness() == pytest.approx(20.0 / 6.5)
        empty = RateSeries(np.zeros(0), np.zeros(0), 1.0)
        assert empty.burstiness() == 0.0

    def test_active_fraction(self):
        r = self._series()
        assert r.active_fraction() == pytest.approx(3 / 4)
        assert r.active_fraction(threshold=6.0) == pytest.approx(1 / 4)

    def test_truncated(self):
        r = self._series().truncated(2.0)
        assert r.rates.size == 2
        assert r.total == pytest.approx(25.0)

    def test_rate_normalization_by_bin_width(self):
        r = RateSeries.from_events([0.1], [10.0], bin_width=0.5)
        assert r.rates[0] == pytest.approx(20.0)  # 10 units / 0.5 s

    def test_autocorrelation_detects_period(self):
        # Period-5 impulse train
        t = np.arange(100, dtype=float)
        w = np.where(t % 5 == 0, 10.0, 0.0)
        r = RateSeries.from_events(t, w, bin_width=1.0)
        ac = r.autocorrelation(max_lag=20)
        assert ac[0] == pytest.approx(1.0)
        # Lag 5 should be the strongest off-zero peak
        assert np.argmax(ac[1:]) + 1 == 5

    def test_autocorrelation_constant_series(self):
        r = RateSeries.from_events([0.5, 1.5], [1.0, 1.0], bin_width=1.0)
        ac = r.autocorrelation()
        assert ac[0] == pytest.approx(1.0)

    def test_autocorrelation_empty(self):
        r = RateSeries(np.zeros(0), np.zeros(0), 1.0)
        assert r.autocorrelation().size == 0
