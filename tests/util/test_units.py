"""Unit conversions: the 10 us tick base and Cray word units."""

import pytest

from repro.util import units


def test_tick_base_is_10_microseconds():
    assert units.TICKS_PER_SECOND == 100_000
    assert units.TICK_SECONDS == pytest.approx(1e-5)


def test_seconds_ticks_round_trip():
    assert units.seconds_to_ticks(1.0) == 100_000
    assert units.ticks_to_seconds(100_000) == pytest.approx(1.0)
    assert units.seconds_to_ticks(units.ticks_to_seconds(12345)) == 12345


def test_seconds_to_ticks_rounds_to_nearest():
    # 1.5 ticks of seconds rounds to 2 ticks
    assert units.seconds_to_ticks(1.5e-5) == 2
    assert units.seconds_to_ticks(1.4e-5) == 1


def test_megawords():
    # 128 MW is the Y-MP's 1 GB main memory
    assert units.megawords_to_bytes(128) == 1024 * units.MB
    assert units.bytes_to_megawords(units.megawords_to_bytes(256)) == pytest.approx(256)


def test_mb_and_kb_conversions():
    assert units.mb_to_bytes(1) == units.MB
    assert units.bytes_to_mb(units.MB) == pytest.approx(1.0)
    assert units.kb_to_bytes(32) == 32 * 1024
    assert units.bytes_to_kb(units.MB) == pytest.approx(1024.0)


def test_format_bytes():
    assert units.format_bytes(512) == "512 B"
    assert units.format_bytes(1536) == "1.50 KB"
    assert units.format_bytes(9.6e6) == "9.16 MB"


def test_format_seconds():
    assert units.format_seconds(2.5) == "2.50 s"
    assert units.format_seconds(0.015) == "15.00 ms"
    assert units.format_seconds(2e-5) == "20.0 us"


def test_trace_block_size_matches_header():
    assert units.TRACE_BLOCK_SIZE == 512
