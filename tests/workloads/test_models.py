"""The seven application models: calibration, structure, determinism.

Heavier apps are generated once per session at a small scale (fixtures)
and shared across the checks.
"""

import numpy as np
import pytest

from repro.trace import flags as F
from repro.trace.procstat import ProcstatCollector
from repro.trace.reconstruct import reconstruct_array
from repro.trace.validate import validate_array
from repro.util.errors import CalibrationError
from repro.workloads import (
    APP_NAMES,
    available_models,
    check,
    generate_workload,
    measure,
    model_for,
)

SCALES = {
    "bvi": 0.04,
    "forma": 0.06,
    "ccm": 0.2,
    "gcm": 0.2,
    "les": 0.2,
    "venus": 0.2,
    "upw": 0.2,
}


@pytest.fixture(scope="module")
def workloads():
    return {
        name: generate_workload(name, scale=SCALES[name]) for name in APP_NAMES
    }


class TestRegistry:
    def test_all_models_registered(self):
        assert set(available_models()) == set(APP_NAMES)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            model_for("nonesuch")

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            model_for("venus", scale=0.0)
        with pytest.raises(ValueError):
            model_for("venus", scale=1.5)


class TestCalibration:
    def test_all_apps_within_tolerance(self, workloads):
        for name, w in workloads.items():
            check(w, tolerance=0.25)  # raises CalibrationError on failure

    def test_rates_scale_invariant(self):
        small = measure(generate_workload("venus", scale=0.1))
        large = measure(generate_workload("venus", scale=0.3))
        assert small.mb_per_sec == pytest.approx(large.mb_per_sec, rel=0.1)
        assert small.ios_per_sec == pytest.approx(large.ios_per_sec, rel=0.1)

    def test_check_raises_on_miscalibration(self, workloads):
        with pytest.raises(CalibrationError):
            check(workloads["venus"], tolerance=0.0001)


class TestStructure:
    def test_traces_are_valid(self, workloads):
        for name, w in workloads.items():
            report = validate_array(w.trace)
            assert report.ok, (name, report.problems[:3])

    def test_start_times_nondecreasing(self, workloads):
        for w in workloads.values():
            assert np.all(np.diff(w.trace.start_time) >= 0)

    def test_venus_interleaves_six_data_files(self, workloads):
        trace = workloads["venus"].trace
        # six data files plus config and results
        counts = {
            int(fid): int((trace.file_id == fid).sum())
            for fid in trace.file_ids()
        }
        busy = [fid for fid, n in counts.items() if n > 100]
        assert len(busy) == 6

    def test_les_uses_async(self, workloads):
        trace = workloads["les"].trace
        async_frac = trace.is_async.mean()
        assert async_frac > 0.9

    def test_other_apps_synchronous(self, workloads):
        for name in ("venus", "ccm", "bvi", "forma", "gcm", "upw"):
            assert workloads[name].trace.is_async.mean() == 0.0

    def test_bvi_small_ssd_accesses(self, workloads):
        trace = workloads["bvi"].trace
        sizes, counts = np.unique(trace.length, return_counts=True)
        dominant = sizes[np.argmax(counts)]
        assert dominant == 14 * 1024  # the dominant (read) request size
        # ... and the overall average is the paper's ~16 KB
        assert trace.length.mean() == pytest.approx(16.1 * 1024, rel=0.1)

    def test_forma_read_dominated(self, workloads):
        trace = workloads["forma"].trace
        assert trace.read_bytes > 8 * trace.write_bytes

    def test_compulsory_apps_do_little_io(self, workloads):
        for name in ("gcm", "upw"):
            r = measure(workloads[name])
            assert r.mb_per_sec < 1.0

    def test_ssd_app_wall_equals_cpu(self, workloads):
        # bvi never sleeps: its device does not suspend.
        w = workloads["bvi"]
        assert w.wall_seconds == pytest.approx(w.cpu_seconds, rel=1e-6)

    def test_disk_apps_stall(self, workloads):
        w = workloads["venus"]
        assert w.wall_seconds > w.cpu_seconds * 1.2


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_workload("ccm", scale=0.1, seed=7)
        b = generate_workload("ccm", scale=0.1, seed=7)
        np.testing.assert_array_equal(a.trace.start_time, b.trace.start_time)
        np.testing.assert_array_equal(a.trace.offset, b.trace.offset)

    def test_different_seed_different_timing(self):
        a = generate_workload("ccm", scale=0.1, seed=7)
        b = generate_workload("ccm", scale=0.1, seed=8)
        assert not np.array_equal(a.trace.start_time, b.trace.start_time)
        # ...but identical I/O structure (offsets/sizes are the algorithm)
        np.testing.assert_array_equal(a.trace.offset, b.trace.offset)


class TestCollectionPipeline:
    def test_generate_through_procstat(self):
        packets = []
        collector = ProcstatCollector(packets.append, max_events_per_packet=64)
        direct = generate_workload("venus", scale=0.1)
        model = model_for("venus", scale=0.1)
        staged = model.generate(collector=collector)
        assert len(staged.trace) == 0  # events went to the collector
        rebuilt = reconstruct_array(packets)
        assert len(rebuilt) == len(direct.trace)
        np.testing.assert_array_equal(rebuilt.offset, direct.trace.offset)
        np.testing.assert_array_equal(
            rebuilt.process_clock, direct.trace.process_clock
        )
