"""Catalog integrity and the access-pattern building blocks."""

import numpy as np
import pytest

from repro.runtime.api import AppRuntime
from repro.runtime.files import FileSystem
from repro.util.rng import make_rng
from repro.workloads.catalog import APP_NAMES, PAPER_APPS, paper_row
from repro.workloads.patterns import (
    FileCursor,
    InterleavedSweep,
    jittered_array,
    jittered_ticks,
    split_evenly,
)


class TestCatalog:
    def test_all_apps_present(self):
        assert set(PAPER_APPS) == set(APP_NAMES)
        assert len(APP_NAMES) == 7

    def test_rows_internally_consistent(self):
        # rate x time ~ total and count x avg ~ total, within the OCR
        # reconstruction slop.
        for row in PAPER_APPS.values():
            assert row.mb_per_sec * row.running_seconds == pytest.approx(
                row.total_io_mb, rel=0.1
            )
            assert row.ios_per_sec * row.running_seconds == pytest.approx(
                row.n_ios, rel=0.1
            )
            assert row.n_ios * row.avg_io_mb == pytest.approx(
                row.total_io_mb, rel=0.15
            )

    def test_table2_consistent_with_table1(self):
        for row in PAPER_APPS.values():
            total_rate = row.read_mb_per_sec + row.write_mb_per_sec
            assert total_rate == pytest.approx(row.mb_per_sec, rel=0.15)
            total_iops = row.read_ios_per_sec + row.write_ios_per_sec
            assert total_iops == pytest.approx(row.ios_per_sec, rel=0.15)

    def test_narrative_flags(self):
        assert PAPER_APPS["bvi"].uses_ssd
        assert PAPER_APPS["les"].uses_async
        assert PAPER_APPS["venus"].n_data_files == 6
        assert PAPER_APPS["gcm"].compulsory_only
        assert PAPER_APPS["upw"].compulsory_only

    def test_read_fraction(self):
        venus = paper_row("venus")
        assert venus.read_fraction_bytes == pytest.approx(1.8 / 2.8)

    def test_unknown_app(self):
        with pytest.raises(KeyError, match="unknown application"):
            paper_row("nope")


def make_rt(sizes):
    fs = FileSystem()
    for name, size in sizes.items():
        fs.create(name, size=size)
    return AppRuntime(1, fs)


class TestFileCursor:
    def test_sequential_then_wrap(self):
        rt = make_rt({"d": 2500})
        fd = rt.open("d")
        cur = FileCursor(rt, fd, chunk=1000)
        cur.read()
        cur.read()
        cur.read()  # 2000+1000 > 2500 -> wraps to 0
        offsets = [e.offset for e in rt.tracer.events]
        assert offsets == [0, 1000, 0]

    def test_write_wraps_at_initial_size(self):
        rt = make_rt({"d": 2500})
        fd = rt.open("d")
        cur = FileCursor(rt, fd, chunk=1000)
        for _ in range(4):
            cur.write()
        assert rt.file_size(fd) == 2500  # in-place updates do not grow

    def test_skip_moves_without_io(self):
        rt = make_rt({"d": 10_000})
        fd = rt.open("d")
        cur = FileCursor(rt, fd, chunk=1000)
        cur.skip()
        cur.read()
        assert [e.offset for e in rt.tracer.events] == [1000]

    def test_rejects_bad_chunk(self):
        rt = make_rt({"d": 100})
        fd = rt.open("d")
        with pytest.raises(ValueError):
            FileCursor(rt, fd, chunk=0)


class TestInterleavedSweep:
    def test_round_robin(self):
        rt = make_rt({"a": 10_000, "b": 10_000, "c": 10_000})
        cursors = [FileCursor(rt, rt.open(n), 1000) for n in ("a", "b", "c")]
        sweep = InterleavedSweep(cursors)
        for _ in range(6):
            sweep.read_step()
        fids = [e.file_id for e in rt.tracer.events]
        assert fids == [1, 2, 3, 1, 2, 3]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            InterleavedSweep([])


class TestHelpers:
    def test_split_evenly(self):
        assert split_evenly(10, 3) == [4, 3, 3]
        assert sum(split_evenly(1234, 7)) == 1234
        assert split_evenly(0, 2) == [0, 0]
        with pytest.raises(ValueError):
            split_evenly(5, 0)

    def test_jittered_ticks_bounds(self):
        rng = make_rng(1)
        for _ in range(100):
            v = jittered_ticks(100, rng)
            assert 50 <= v <= 150
        assert jittered_ticks(0, rng) == 0
        assert jittered_ticks(100, rng, relative_sigma=0) == 100

    def test_jittered_array_matches_scalar_distribution(self):
        rng = make_rng(2)
        arr = jittered_array(1000, 5000, rng)
        assert arr.shape == (5000,)
        assert arr.min() >= 500 and arr.max() <= 1500
        assert abs(arr.mean() - 1000) < 20
        assert jittered_array(1000, 0, rng).size == 0
        np.testing.assert_array_equal(jittered_array(0, 3, rng), [0, 0, 0])
        np.testing.assert_array_equal(
            jittered_array(7, 3, rng, relative_sigma=0), [7, 7, 7]
        )
