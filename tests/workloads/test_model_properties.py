"""Cross-seed / cross-scale properties of the workload generators.

The calibration contract: rates, access sizes, read/write balance and
structural validity hold for *any* seed and any reasonable scale, not
just the defaults the benchmarks use.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.validate import validate_array
from repro.workloads import check, generate_workload, measure

# bvi and forma are too slow to fuzz; the cheap five cover every model
# family (staged sync, staged async, compulsory).
FUZZABLE = ("ccm", "gcm", "les", "venus", "upw")


@settings(max_examples=15, deadline=None)
@given(
    name=st.sampled_from(FUZZABLE),
    seed=st.integers(0, 2**31),
    scale=st.sampled_from([0.08, 0.15, 0.3]),
)
def test_calibration_holds_for_any_seed(name, seed, scale):
    workload = generate_workload(name, scale=scale, seed=seed)
    check(workload, tolerance=0.3)  # raises on miscalibration
    assert validate_array(workload.trace).ok


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31))
def test_structure_is_seed_invariant(seed):
    # Jitter moves timing; the I/O plan (offsets, sizes, order of files)
    # is the algorithm and must not depend on the seed.
    a = generate_workload("venus", scale=0.1, seed=seed)
    b = generate_workload("venus", scale=0.1, seed=seed + 1)
    np.testing.assert_array_equal(a.trace.offset, b.trace.offset)
    np.testing.assert_array_equal(a.trace.length, b.trace.length)
    np.testing.assert_array_equal(a.trace.file_id, b.trace.file_id)
    assert len(a.trace) == len(b.trace)


@pytest.mark.parametrize("scale", [0.06, 0.12, 0.24])
def test_rate_scale_invariance_all_cheap_apps(scale):
    for name in FUZZABLE:
        r = measure(generate_workload(name, scale=scale))
        paper = r.target_mb_per_sec
        assert r.mb_per_sec == pytest.approx(paper, rel=0.3), (name, scale)


def test_cpu_seconds_track_scale():
    small = generate_workload("ccm", scale=0.1)
    large = generate_workload("ccm", scale=0.3)
    assert large.cpu_seconds == pytest.approx(3 * small.cpu_seconds, rel=0.15)
