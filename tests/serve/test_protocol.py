"""HTTP/1.1 parsing and SSE framing round trips."""

import asyncio
import json

import pytest

from repro.serve.protocol import (
    MAX_BODY_BYTES,
    ProtocolError,
    Request,
    error_response,
    json_response,
    parse_sse_stream,
    read_request,
    response_bytes,
    sse_event,
    sse_preamble,
)


def parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_full_request(self):
        body = json.dumps({"kind": "sweep"}).encode()
        raw = (
            b"POST /jobs?x=1&x=2&name=a%20b HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.path == "/jobs"
        assert request.query == {"x": ["1", "2"], "name": ["a b"]}
        assert request.param("name") == "a b"
        assert request.param("absent", "dflt") == "dflt"
        assert request.headers["host"] == "localhost"
        assert request.json() == {"kind": "sweep"}

    def test_clean_eof_is_none(self):
        assert parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError) as err:
            parse(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_malformed_header(self):
        with pytest.raises(ProtocolError) as err:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert err.value.status == 400

    def test_oversized_body_is_413(self):
        raw = (
            b"POST /jobs HTTP/1.1\r\n"
            + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        with pytest.raises(ProtocolError) as err:
            parse(raw)
        assert err.value.status == 413

    def test_truncated_body_is_400(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"
        with pytest.raises(ProtocolError) as err:
            parse(raw)
        assert err.value.status == 400

    def test_bad_content_length(self):
        with pytest.raises(ProtocolError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")


class TestRequestJson:
    def test_empty_body_is_empty_object(self):
        assert Request(method="GET", path="/").json() == {}

    def test_invalid_json_is_400(self):
        request = Request(method="POST", path="/", body=b"{nope")
        with pytest.raises(ProtocolError) as err:
            request.json()
        assert err.value.status == 400

    def test_non_object_json_is_400(self):
        request = Request(method="POST", path="/", body=b"[1, 2]")
        with pytest.raises(ProtocolError):
            request.json()


class TestResponses:
    def test_response_shape(self):
        raw = response_bytes(200, b"hi", content_type="text/plain")
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"Connection: close" in head
        assert b"Content-Length: 2" in head
        assert body == b"hi"

    def test_json_response_round_trips(self):
        raw = json_response(202, {"id": "j000001"})
        body = raw.split(b"\r\n\r\n", 1)[1]
        assert json.loads(body) == {"id": "j000001"}

    def test_error_response_carries_status(self):
        raw = error_response(429, "queue full")
        assert raw.startswith(b"HTTP/1.1 429 Too Many Requests")
        body = json.loads(raw.split(b"\r\n\r\n", 1)[1])
        assert body == {"error": "queue full", "status": 429}


class TestSse:
    def test_preamble_opens_event_stream(self):
        head = sse_preamble()
        assert b"200 OK" in head
        assert b"text/event-stream" in head
        assert head.endswith(b"\r\n\r\n")

    def test_event_framing_and_parse_round_trip(self):
        records = [
            {"kind": "sweep_start", "points": 3},
            {"kind": "point_done", "index": 0, "label": "p0"},
            {"kind": "end", "state": "done"},
        ]
        wire = b"".join(
            sse_event(r, seq=i) for i, r in enumerate(records)
        ).decode()
        assert "event: sweep_start" in wire
        assert "id: 2" in wire
        parsed = parse_sse_stream(wire.splitlines())
        assert parsed == records
