"""JobQueue: priority order, admission control, close semantics."""

import asyncio

import pytest

from repro.serve.queue import JobQueue, QueueClosed, QueueFull


def run(coro):
    return asyncio.run(coro)


class TestOrdering:
    def test_higher_priority_pops_first(self):
        async def go():
            q = JobQueue(max_pending=8)
            q.put_nowait("low", priority=0)
            q.put_nowait("high", priority=5)
            q.put_nowait("mid", priority=1)
            return [await q.get() for _ in range(3)]

        assert run(go()) == ["high", "mid", "low"]

    def test_equal_priority_is_fifo(self):
        async def go():
            q = JobQueue(max_pending=8)
            for name in ("a", "b", "c"):
                q.put_nowait(name, priority=3)
            return [await q.get() for _ in range(3)]

        assert run(go()) == ["a", "b", "c"]

    def test_get_waits_for_put(self):
        async def go():
            q = JobQueue(max_pending=2)
            getter = asyncio.ensure_future(q.get())
            await asyncio.sleep(0)
            assert not getter.done()
            q.put_nowait("late")
            return await getter

        assert run(go()) == "late"


class TestAdmission:
    def test_full_queue_rejects(self):
        async def go():
            q = JobQueue(max_pending=2)
            q.put_nowait("a")
            q.put_nowait("b")
            assert q.full
            with pytest.raises(QueueFull, match="bound 2"):
                q.put_nowait("c")
            # popping one frees a slot again
            assert await q.get() == "a"
            q.put_nowait("c")
            assert len(q) == 2

        run(go())

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError, match="max_pending"):
            JobQueue(max_pending=0)


class TestRemoveDrain:
    def test_remove_pending_job(self):
        async def go():
            q = JobQueue(max_pending=8)
            q.put_nowait("a")
            q.put_nowait("b", priority=2)
            q.put_nowait("c")
            assert q.remove("b") is True
            assert q.remove("b") is False  # identity: already gone
            return [await q.get() for _ in range(2)]

        assert run(go()) == ["a", "c"]

    def test_drain_returns_all_in_order(self):
        async def go():
            q = JobQueue(max_pending=8)
            q.put_nowait("low", priority=0)
            q.put_nowait("high", priority=9)
            drained = q.drain()
            assert len(q) == 0
            return drained

        assert run(go()) == ["high", "low"]


class TestClose:
    def test_closed_rejects_puts(self):
        async def go():
            q = JobQueue(max_pending=2)
            q.close()
            with pytest.raises(QueueClosed):
                q.put_nowait("x")

        run(go())

    def test_close_wakes_waiters_with_none(self):
        async def go():
            q = JobQueue(max_pending=2)
            getters = [asyncio.ensure_future(q.get()) for _ in range(3)]
            await asyncio.sleep(0)
            q.close()
            return await asyncio.gather(*getters)

        assert run(go()) == [None, None, None]

    def test_get_drains_remaining_after_close(self):
        async def go():
            q = JobQueue(max_pending=2)
            q.put_nowait("leftover")
            q.close()
            first = await q.get()
            second = await q.get()
            return first, second

        assert run(go()) == ("leftover", None)
