"""Job spec parsing: HTTP bodies must build exactly the CLI's points."""

import pytest

from repro.exec.grid import GridSpec, build_sim_config
from repro.exec.runner import TraceFileSpec
from repro.serve.jobs import JobSpecError, JobState, parse_job, MAX_RUNNER_JOBS
from repro.util.rng import DEFAULT_SEED


def sweep_body(**spec):
    return {"kind": "sweep", "spec": spec}


class TestSweepSpec:
    def test_points_match_grid_spec_exactly(self):
        """The bit-identity root: an HTTP sweep body and the equivalent
        ``repro sweep`` flags must produce the same point keys."""
        job = parse_job(
            sweep_body(
                app="venus", copies=2, scale=0.05,
                cache_mb=[8, 32], block_kb="4,8",
                read_ahead="on,off",
            ),
            "j000001",
        )
        grid = GridSpec(
            app="venus", n_copies=2, scale=0.05,
            cache_sizes_mb=(8.0, 32.0), block_sizes_kb=(4.0, 8.0),
            read_ahead=(True, False),
        )
        expected = grid.points()
        assert len(job.points) == len(expected) == 8
        assert [p.key(None) for p in job.points] == [
            p.key(None) for p in expected
        ]
        assert [p.label for p in job.points] == [p.label for p in expected]

    def test_defaults_are_the_cli_defaults(self):
        job = parse_job(sweep_body(), "j000001")
        grid = GridSpec()  # repro sweep defaults mirror GridSpec defaults
        assert len(job.points) == 14
        assert job.points[0].key(None) == grid.points()[0].key(None)
        assert job.state is JobState.QUEUED
        assert job.runner_jobs == 1

    def test_scalar_axes_accepted(self):
        job = parse_job(
            sweep_body(cache_mb=16, block_kb=4.0, read_ahead=False),
            "j000001",
        )
        assert len(job.points) == 1
        assert job.points[0].config.cache.read_ahead is False

    def test_unknown_app_rejected(self):
        with pytest.raises(JobSpecError, match="unknown application"):
            parse_job(sweep_body(app="fortran77"), "j000001")

    def test_bad_axis_rejected(self):
        with pytest.raises(JobSpecError, match="cache_mb"):
            parse_job(sweep_body(cache_mb="four,eight"), "j000001")
        with pytest.raises(JobSpecError, match="read_ahead"):
            parse_job(sweep_body(read_ahead="maybe"), "j000001")


class TestSimulateSpec:
    def test_workload_and_config_mirror_the_cli(self):
        job = parse_job(
            {
                "kind": "simulate",
                "spec": {
                    "traces": ["/tmp/a.trc", "/tmp/b.trc"],
                    "cache_mb": 64, "block_kb": 8, "ssd": True,
                    "share_files": True, "trace_store": True,
                },
            },
            "j000002",
        )
        (point,) = job.points
        assert point.workload == TraceFileSpec(
            paths=("/tmp/a.trc", "/tmp/b.trc"),
            share_files=True, use_store=True,
        )
        assert point.config == build_sim_config(
            cache_mb=64, block_kb=8, ssd=True
        )

    def test_inline_faults_applied(self):
        job = parse_job(
            {
                "kind": "simulate",
                "spec": {"traces": ["/tmp/a.trc"],
                         "faults": "error=0.05,max_retries=4"},
            },
            "j000003",
        )
        assert job.points[0].config.faults is not None

    def test_faults_and_plan_conflict(self):
        with pytest.raises(JobSpecError, match="not both"):
            parse_job(
                {
                    "kind": "simulate",
                    "spec": {"traces": ["/t"], "faults": "error=0.1",
                             "fault_plan": {"faults": {}}},
                },
                "j000004",
            )

    def test_traces_required(self):
        with pytest.raises(JobSpecError, match="traces"):
            parse_job({"kind": "simulate", "spec": {}}, "j000005")


class TestEnvelope:
    def test_unknown_kind(self):
        with pytest.raises(JobSpecError, match="unknown job kind"):
            parse_job({"kind": "compile"}, "j000001")

    def test_bad_priority(self):
        with pytest.raises(JobSpecError, match="priority"):
            parse_job(sweep_body() | {"priority": "urgent"}, "j000001")

    def test_jobs_bound_enforced(self):
        with pytest.raises(JobSpecError, match="jobs"):
            parse_job(sweep_body(jobs=MAX_RUNNER_JOBS + 1), "j000001")
        with pytest.raises(JobSpecError, match="jobs"):
            parse_job(sweep_body(jobs=0), "j000001")

    def test_non_object_spec(self):
        with pytest.raises(JobSpecError, match="spec"):
            parse_job({"kind": "sweep", "spec": [1]}, "j000001")

    def test_seed_defaults_to_default_seed(self):
        job = parse_job(sweep_body(cache_mb=8, block_kb=4), "j000001")
        assert job.points[0].workload.seed == DEFAULT_SEED
