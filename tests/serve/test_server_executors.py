"""Serve-layer regression: jobs on any executor backend + tier metrics.

A sweep job submitted with ``executor=queue`` must return the point
keys and digests of the in-process serial run (the backend is invisible
in the results), and a server configured with a tiered result cache
must expose the tier counters on ``/metrics`` after serving jobs.
"""

import pytest

from repro.exec.grid import GridSpec
from repro.exec.runner import SweepRunner
from repro.serve import ServeClient, ServeClientError, ServeConfig, ServerThread

from tests.exec.test_shm import shm_leftovers

SCALE = 0.05
SWEEP_SPEC = {
    "app": "venus", "copies": 2, "scale": SCALE,
    "cache_mb": [8, 32], "block_kb": 4, "jobs": 2,
}


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    """Isolate every on-disk cache and executor override."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "results"))
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    monkeypatch.delenv("REPRO_CACHE_TIERS", raising=False)
    return tmp_path


def quick_server(**overrides):
    defaults = dict(port=0, workers=2, max_pending=4)
    return ServerThread(ServeConfig(**{**defaults, **overrides}))


def serial_reference():
    grid = GridSpec(
        app="venus", n_copies=2, scale=SCALE,
        cache_sizes_mb=(8.0, 32.0), block_sizes_kb=(4.0,),
    )
    direct = SweepRunner(jobs=1, cache=None).run(grid.points())
    return [d.key for d in direct], [d.result.digest() for d in direct]


class TestExecutorJobs:
    def test_queue_job_digests_match_serial_and_tier_metrics_exposed(
        self, cache_env
    ):
        tiers = f"{cache_env / 'local'},{cache_env / 'shared'}"
        before = shm_leftovers()
        with quick_server(cache_tiers=tiers) as srv:
            client = ServeClient(port=srv.port)

            job = client.submit_sweep({**SWEEP_SPEC, "executor": "queue"})
            status = client.wait(job["id"], timeout=300)
            assert status["state"] == "done", status
            results = client.result(job["id"])["results"]

            ref_keys, ref_digests = serial_reference()
            assert [r["key"] for r in results] == ref_keys
            assert [r["digest"] for r in results] == ref_digests
            assert not any(r["cached"] for r in results)

            # /metrics exposes the tier counters the job produced
            report = client.metrics()
            assert "exec.cache.local.stores" in report
            assert "exec.cache.shared.writebacks" in report

            # a second queue job is served from the tiered cache
            again = client.submit_sweep({**SWEEP_SPEC, "executor": "queue"})
            assert client.wait(again["id"], timeout=300)["state"] == "done"
            warm = client.result(again["id"])["results"]
            assert all(r["cached"] for r in warm)
            assert [r["digest"] for r in warm] == ref_digests
            assert "exec.cache.local.hits" in client.metrics()
        assert shm_leftovers() <= before

    @pytest.mark.parametrize("executor", ["serial", "pool"])
    def test_other_backends_same_digests(self, cache_env, executor):
        with quick_server(no_cache=True) as srv:
            client = ServeClient(port=srv.port)
            job = client.submit_sweep({**SWEEP_SPEC, "executor": executor})
            assert client.wait(job["id"], timeout=300)["state"] == "done"
            results = client.result(job["id"])["results"]
        ref_keys, ref_digests = serial_reference()
        assert [r["key"] for r in results] == ref_keys
        assert [r["digest"] for r in results] == ref_digests

    def test_server_default_executor_applies_when_job_names_none(
        self, cache_env
    ):
        with quick_server(no_cache=True, executor="queue") as srv:
            client = ServeClient(port=srv.port)
            job = client.submit_sweep(SWEEP_SPEC)
            assert client.wait(job["id"], timeout=300)["state"] == "done"
            results = client.result(job["id"])["results"]
        _, ref_digests = serial_reference()
        assert [r["digest"] for r in results] == ref_digests

    def test_unknown_executor_is_a_400(self, cache_env):
        with quick_server(no_cache=True) as srv:
            client = ServeClient(port=srv.port)
            with pytest.raises(ServeClientError) as err:
                client.submit_sweep({**SWEEP_SPEC, "executor": "warp-drive"})
            assert err.value.status == 400
            assert "unknown executor" in str(err.value)
