"""Sweep-server lifecycle: bit-identity, SSE, cancel, admission, shutdown.

The contract under test is the one the package promises: a job submitted
over HTTP runs on the same runner tier as the CLI and returns the same
point keys and digests; progress streams as server-sent events; a full
queue answers 429; cancellation and shutdown leave no shared-memory
segment behind.
"""

import threading
import time

import pytest

from repro.exec.grid import GridSpec
from repro.exec.runner import SweepRunner
from repro.exec.shm import shm_available
from repro.serve import (
    ServeClient,
    ServeClientError,
    ServeConfig,
    ServerThread,
)
from repro.serve.app import SweepServer
from repro.util.errors import SweepCancelled

from tests.exec.test_shm import shm_leftovers

SCALE = 0.05
SWEEP_SPEC = {
    "app": "venus", "copies": 2, "scale": SCALE,
    "cache_mb": [8, 32], "block_kb": 4, "jobs": 1,
}


@pytest.fixture()
def cache_env(tmp_path, monkeypatch):
    """Isolate every on-disk cache the server tier can touch."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "results"))
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
    return tmp_path


def quick_server(**overrides):
    defaults = dict(port=0, workers=2, max_pending=4)
    config = ServeConfig(**{**defaults, **overrides})
    return ServerThread(config)


class TestLifecycle:
    def test_submit_stream_fetch_digests_match_cli(self, cache_env):
        """start -> submit -> stream SSE -> fetch; digests == CLI path."""
        before = shm_leftovers()
        with quick_server(cache_dir=cache_env / "results") as srv:
            client = ServeClient(port=srv.port)
            assert client.health()["ok"] is True

            job = client.submit_sweep(SWEEP_SPEC)
            assert job["state"] == "queued"
            assert job["points"] == 2

            events = list(client.events(job["id"]))
            kinds = [e["kind"] for e in events]
            assert kinds[-1] == "end"
            assert "sweep_start" in kinds
            assert kinds.count("point_done") == 2
            seqs = [e["seq"] for e in events]
            assert seqs == sorted(seqs)

            status = client.wait(job["id"], timeout=120)
            assert status["state"] == "done"
            assert status["done_points"] == 2

            payload = client.result(job["id"])
            results = payload["results"]

            # Bit-identity: the CLI sweep path is GridSpec -> SweepRunner;
            # the server must return the same keys and digests.
            grid = GridSpec(
                app="venus", n_copies=2, scale=SCALE,
                cache_sizes_mb=(8.0, 32.0), block_sizes_kb=(4.0,),
            )
            direct = SweepRunner(jobs=1, cache=None).run(grid.points())
            assert [r["key"] for r in results] == [d.key for d in direct]
            assert [r["digest"] for r in results] == [
                d.result.digest() for d in direct
            ]

            # a late subscriber gets the full history replayed, same order
            replay = list(client.events(job["id"]))
            assert [e["seq"] for e in replay] == seqs

            report = client.metrics()
            assert "exec.runner.points_simulated" in report
            assert "serve.jobs" in report
        assert shm_leftovers() <= before

    def test_resubmission_serves_from_result_cache(self, cache_env):
        with quick_server(cache_dir=cache_env / "results") as srv:
            client = ServeClient(port=srv.port)
            first = client.submit_sweep(SWEEP_SPEC)
            client.wait(first["id"], timeout=120)
            fresh = client.result(first["id"])["results"]

            second = client.submit_sweep(SWEEP_SPEC)
            client.wait(second["id"], timeout=120)
            warm = client.result(second["id"])["results"]

        assert all(not r["cached"] for r in fresh)
        assert all(r["cached"] for r in warm)
        assert [r["digest"] for r in warm] == [r["digest"] for r in fresh]
        assert [r["key"] for r in warm] == [r["key"] for r in fresh]


@pytest.mark.skipif(not shm_available(), reason="no shared memory here")
class TestCancellation:
    def test_cancel_mid_sweep_leaves_no_shm_segments(self, cache_env):
        """A pool sweep cancelled mid-flight tears down every segment."""
        before = shm_leftovers()
        spec = {
            "app": "venus", "copies": 2, "scale": SCALE,
            "cache_mb": [4, 8, 16, 32, 64, 128], "block_kb": 4,
            "jobs": 2,  # pool path: workloads go over shared memory
        }
        with quick_server(no_cache=True) as srv:
            client = ServeClient(port=srv.port)
            job = client.submit_sweep(spec)
            # cancel as soon as the job starts running (points take
            # ~hundreds of ms each; the cancel lands well before done)
            for event in client.events(job["id"]):
                if event["kind"] == "job_state":
                    client.cancel(job["id"])
                if event["kind"] == "end":
                    final = event
            assert final["state"] == "cancelled"
            status = client.wait(job["id"], timeout=60)
            assert status["state"] == "cancelled"
            assert status["done_points"] < 6
            with_error = client.job(job["id"])
            assert "cancelled" in with_error.get("error", "")
            # result endpoint answers the terminal state, not 409
            assert client.result(job["id"])["state"] == "cancelled"
        assert shm_leftovers() <= before

    def test_cancel_is_idempotent(self, cache_env):
        with quick_server(no_cache=True) as srv:
            client = ServeClient(port=srv.port)
            job = client.submit_sweep(SWEEP_SPEC)
            client.cancel(job["id"])
            status = client.wait(job["id"], timeout=60)
            assert status["state"] in ("cancelled", "done")
            again = client.cancel(job["id"])
            assert again["state"] == status["state"]


def blocked_executor(release: threading.Event):
    """Stand-in for ``SweepServer._execute_job``: park until released,
    honouring per-job cancellation like the real runner does."""

    def execute(self, job, loop):
        while not release.wait(timeout=0.01):
            if job.cancel.is_set():
                raise SweepCancelled("cancelled while parked")
        return [], {}

    return execute


class TestAdmissionControl:
    def test_full_queue_answers_429(self, cache_env, monkeypatch):
        release = threading.Event()
        monkeypatch.setattr(
            SweepServer, "_execute_job", blocked_executor(release)
        )
        with quick_server(workers=1, max_pending=1) as srv:
            client = ServeClient(port=srv.port)
            running = client.submit_sweep(SWEEP_SPEC)
            queued = client.submit_sweep(SWEEP_SPEC)

            # worker busy + one slot queued: the third job is rejected
            deadline = time.monotonic() + 10
            while client.health()["queued"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            with pytest.raises(ServeClientError) as err:
                client.submit_sweep(SWEEP_SPEC)
            assert err.value.status == 429

            # a running (not done) job's result is a 409 conflict
            with pytest.raises(ServeClientError) as err:
                client.result(running["id"])
            assert err.value.status == 409

            release.set()
            assert client.wait(running["id"], timeout=30)["state"] == "done"
            assert client.wait(queued["id"], timeout=30)["state"] == "done"
            assert "serve.jobs.rejected" in client.metrics()

    def test_bad_spec_is_400_unknown_job_404(self, cache_env):
        with quick_server() as srv:
            client = ServeClient(port=srv.port)
            with pytest.raises(ServeClientError) as err:
                client.submit("transmogrify", {})
            assert err.value.status == 400
            with pytest.raises(ServeClientError) as err:
                client.submit_sweep({"app": "no-such-app"})
            assert err.value.status == 400
            with pytest.raises(ServeClientError) as err:
                client.job("j999999")
            assert err.value.status == 404
            with pytest.raises(ServeClientError) as err:
                client._json("PUT", "/jobs")
            assert err.value.status == 404


class TestShutdown:
    def test_shutdown_cancels_queued_and_running(self, cache_env, monkeypatch):
        """Graceful shutdown: queued jobs cancel immediately; a running
        job that outlives the drain timeout is cancelled, not leaked."""
        release = threading.Event()  # never set: the job runs "forever"
        monkeypatch.setattr(
            SweepServer, "_execute_job", blocked_executor(release)
        )
        srv = quick_server(
            workers=1, max_pending=2, drain_timeout_s=0.2
        ).start()
        client = ServeClient(port=srv.port)
        running = client.submit_sweep(SWEEP_SPEC)
        queued = client.submit_sweep(SWEEP_SPEC)
        deadline = time.monotonic() + 10
        while client.job(running["id"])["state"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        srv.stop()

        states = {j.id: j.state.value for j in srv.server.jobs.values()}
        assert states[running["id"]] == "cancelled"
        assert states[queued["id"]] == "cancelled"
        # the listener is gone: new connections are refused
        with pytest.raises(OSError):
            client.health()
