"""Run one simulation tuple through both engines and demand digest equality.

The core primitive is :func:`run_pair`: given traces and a config it runs
the event-at-a-time engine and the batch kernel back to back (on the
requested cache implementation) and reports whether the full result
digests -- every scalar, every cache counter, every binned rate series --
match.  :func:`assert_equivalent` turns a mismatch into an assertion
whose message names the first diverging fields, which is the difference
between "digest mismatch" and an actionable bug report.

:data:`QUICK_MATRIX` is the CI matrix: named, reconstructible cases
spanning both cache implementations and fault-free/faulted plans.  Run it
standalone with::

    python -m tests.harness.differential [--artifacts DIR]

which exits nonzero on any mismatch and, when ``--artifacts`` is given,
writes one JSON report per failing case (digests plus the field-level
divergence) for upload from CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.obs.registry import MetricsRegistry
from repro.sim.config import CacheConfig, SimConfig, ssd_cache
from repro.sim.faults import FaultPlan
from repro.sim.metrics import SimulationResult
from repro.sim.procmodel import relabel_copies
from repro.sim.system import SimulatedSystem
from repro.trace.array import TraceArray
from repro.util.rng import DEFAULT_SEED
from repro.util.units import KB, MB
from repro.workloads.base import generate_workload

ENGINE_IMPLS = ("event", "batch")

_SCALAR_FIELDS = (
    "wall_seconds",
    "completion_seconds",
    "n_cpus",
    "busy_seconds",
    "switch_seconds",
    "interrupt_seconds",
    "disk_sequential_fraction",
    "disk_busy_seconds",
    "events_run",
)
_CACHE_FIELDS = (
    "read_requests", "read_bytes", "write_requests", "write_bytes",
    "block_hits", "block_misses", "block_inflight_hits",
    "readahead_hits", "prefetch_issued", "prefetch_blocks",
    "writes_absorbed", "writes_cancelled", "frame_stalls",
    "bypass_requests",
)
_FAULT_FIELDS = (
    "injected_errors", "injected_slowdowns", "timeouts", "retries",
    "recovered", "failed_reads", "failed_writes", "reflushes",
    "degraded_requests", "lost_bytes", "max_attempts", "crashed",
)
_SERIES_FIELDS = ("disk_read_rate", "disk_write_rate", "demand_rate", "busy_rate")


def describe_divergence(a: SimulationResult, b: SimulationResult) -> list[str]:
    """Field-by-field comparison of two results, one line per difference."""
    lines: list[str] = []
    for name in _SCALAR_FIELDS:
        va, vb = getattr(a, name), getattr(b, name)
        if va != vb:
            lines.append(f"{name}: {va!r} != {vb!r}")
    for name in _CACHE_FIELDS:
        va, vb = getattr(a.cache, name), getattr(b.cache, name)
        if va != vb:
            lines.append(f"cache.{name}: {va} != {vb}")
    for name in _FAULT_FIELDS:
        va, vb = getattr(a.faults, name), getattr(b.faults, name)
        if va != vb:
            lines.append(f"faults.{name}: {va!r} != {vb!r}")
    pids = sorted(set(a.processes) | set(b.processes))
    for pid in pids:
        pa, pb = a.processes.get(pid), b.processes.get(pid)
        if pa != pb:
            lines.append(f"processes[{pid}]: {pa!r} != {pb!r}")
    for name in _SERIES_FIELDS:
        sa, sb = getattr(a, name), getattr(b, name)
        if sa != sb:
            lines.append(f"{name}: series differ")
    return lines


@dataclass
class PairOutcome:
    """Both engines' digests for one tuple, plus the divergence if any.

    When the pair was run with ``counters=True``, ``counters`` maps each
    engine impl to its run's counter snapshot (``{name: value}``), so a
    matrix cell can assert that a kernel fast path actually *engaged*
    (e.g. ``counters["batch"]["sim.batch.fast_writes"] > 0``) rather
    than vacuously matching because everything fell back.
    """

    digests: dict[str, str]
    results: dict[str, SimulationResult]
    divergence: list[str] = field(default_factory=list)
    counters: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def match(self) -> bool:
        return self.digests["event"] == self.digests["batch"]


def run_pair(
    traces: Sequence[TraceArray],
    config: SimConfig,
    *,
    cache_impl: str = "fast",
    max_events: int | None = None,
    counters: bool = False,
) -> PairOutcome:
    """Run ``traces`` under ``config`` through both engines and compare.

    ``counters=True`` threads a private enabled
    :class:`~repro.obs.registry.MetricsRegistry` through each run and
    records both counter snapshots on the outcome -- the registry is
    per-run, so the snapshots never bleed between the two engines or
    into the process-global registry.
    """
    results: dict[str, SimulationResult] = {}
    counter_snaps: dict[str, dict[str, float]] = {}
    for impl in ENGINE_IMPLS:
        obs = MetricsRegistry(enabled=True) if counters else None
        results[impl] = SimulatedSystem(
            traces, config, cache_impl=cache_impl, engine_impl=impl, obs=obs
        ).run(max_events=max_events)
        if obs is not None:
            counter_snaps[impl] = obs.counters()
    outcome = PairOutcome(
        digests={impl: r.digest() for impl, r in results.items()},
        results=results,
        counters=counter_snaps,
    )
    if not outcome.match:
        outcome.divergence = describe_divergence(
            results["event"], results["batch"]
        )
    return outcome


def assert_equivalent(
    traces: Sequence[TraceArray],
    config: SimConfig,
    *,
    cache_impl: str = "fast",
    label: str = "",
    max_events: int | None = None,
    counters: bool = False,
) -> PairOutcome:
    """Assert both engines produce the same digest; name what diverged."""
    outcome = run_pair(
        traces, config, cache_impl=cache_impl, max_events=max_events,
        counters=counters,
    )
    if not outcome.match:
        detail = "\n  ".join(outcome.divergence) or "(digest-only divergence)"
        raise AssertionError(
            f"engine divergence{f' [{label}]' if label else ''} "
            f"(cache_impl={cache_impl}):\n"
            f"  event={outcome.digests['event']}\n"
            f"  batch={outcome.digests['batch']}\n  {detail}"
        )
    return outcome


# ---------------------------------------------------------------------------
# Named, reconstructible cases (the CI quick matrix)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DifferentialCase:
    """One named (workload, config, fault-plan, cache-impl) tuple."""

    name: str
    config: SimConfig
    workload: str = "venus"
    scale: float = 0.05
    seed: int = DEFAULT_SEED
    n_copies: int = 2
    fault_spec: str | None = None
    cache_impl: str = "fast"

    def build_traces(self) -> list[TraceArray]:
        trace = generate_workload(
            self.workload, scale=self.scale, seed=self.seed
        ).trace
        if self.n_copies > 1:
            return relabel_copies(trace, self.n_copies)
        return [trace]

    def resolved_config(self) -> SimConfig:
        if self.fault_spec is None:
            return self.config
        return FaultPlan.from_spec(self.fault_spec).apply(self.config)


# Traces are rebuilt per case name at most once; workload generation is
# the expensive part and most cases share (workload, scale, seed, copies).
_TRACE_CACHE: dict[tuple, list[TraceArray]] = {}


def _traces_for(case: DifferentialCase) -> list[TraceArray]:
    key = (case.workload, case.scale, case.seed, case.n_copies)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = case.build_traces()
    return _TRACE_CACHE[key]


def run_case(case: DifferentialCase) -> PairOutcome:
    return run_pair(
        _traces_for(case), case.resolved_config(), cache_impl=case.cache_impl
    )


def _quick_matrix() -> list[DifferentialCase]:
    mem = SimConfig(cache=CacheConfig(size_bytes=8 * MB))
    small = SimConfig(
        cache=CacheConfig(size_bytes=4 * MB, block_bytes=8 * KB)
    )
    cases = []
    for cache_impl in ("fast", "legacy"):
        cases.extend(
            [
                DifferentialCase(
                    f"memory-{cache_impl}", mem, cache_impl=cache_impl
                ),
                DifferentialCase(
                    f"ssd-{cache_impl}",
                    SimConfig(cache=ssd_cache(8 * MB)),
                    cache_impl=cache_impl,
                ),
                DifferentialCase(
                    f"small-blocks-{cache_impl}", small, cache_impl=cache_impl
                ),
                DifferentialCase(
                    f"faulted-{cache_impl}",
                    SimConfig(cache=ssd_cache(8 * MB)),
                    fault_spec="error=0.05,slow=0.1,seed=23,max_retries=4",
                    cache_impl=cache_impl,
                ),
                DifferentialCase(
                    f"ssd-fail-{cache_impl}",
                    SimConfig(cache=ssd_cache(8 * MB)),
                    fault_spec="ssd_fail_at=20",
                    cache_impl=cache_impl,
                ),
            ]
        )
    cases.append(
        DifferentialCase(
            "les-async", SimConfig(cache=CacheConfig(size_bytes=4 * MB)),
            workload="les", n_copies=1,
        )
    )
    cases.append(
        DifferentialCase(
            "crash", mem, fault_spec="crash_at=10",
        )
    )
    return cases


QUICK_MATRIX: list[DifferentialCase] = _quick_matrix()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the engine-differential quick matrix."
    )
    parser.add_argument(
        "--artifacts",
        type=Path,
        default=None,
        help="directory for per-mismatch JSON reports (created on demand)",
    )
    args = parser.parse_args(argv)
    failures = 0
    for case in QUICK_MATRIX:
        outcome = run_case(case)
        status = "ok" if outcome.match else "MISMATCH"
        print(
            f"{case.name:<24} {case.cache_impl:<7} "
            f"event={outcome.digests['event'][:16]} "
            f"batch={outcome.digests['batch'][:16]} {status}"
        )
        if not outcome.match:
            failures += 1
            if args.artifacts is not None:
                args.artifacts.mkdir(parents=True, exist_ok=True)
                report = {
                    "case": case.name,
                    "cache_impl": case.cache_impl,
                    "fault_spec": case.fault_spec,
                    "digests": outcome.digests,
                    "divergence": outcome.divergence,
                }
                path = args.artifacts / f"{case.name}.json"
                path.write_text(json.dumps(report, indent=2))
    print(f"{len(QUICK_MATRIX)} cases, {failures} mismatch(es)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
