"""Cross-backend executor x cache-tier conformance suite (reusable).

The contract every :class:`~repro.exec.executor.Executor` backend and
every cache arrangement must satisfy, stated in the same terms as the
engine differential harness:

* **Bit identity** -- for a fixed sweep, every backend produces the
  exact point keys and result digests of the serial, uncached ground
  truth.  The backend and the cache arrangement are execution details;
  neither may enter the key or perturb the simulation.
* **Cache interop** -- a cache directory populated by one backend must
  serve a warm re-run on a *different* backend entirely from cache:
  zero recomputations (``runner.simulated == 0``), every point flagged
  ``cached``, digests unchanged.  For the tiered arrangement the tier
  counters must show the traffic (cold stores, warm local hits).

:func:`run_combo` checks one ``(executor, cache_mode)`` cell --
including the warm re-run on the next backend in rotation -- and
returns a report dict whose ``problems`` list is empty on conformance.
The pytest wrapper (``tests/exec/test_executor_contract.py``)
parameterizes over the full matrix; CI also runs the matrix standalone
with::

    python -m tests.harness.executor_contract [--artifacts DIR]

which exits nonzero on any violation and, when ``--artifacts`` is
given, writes one JSON report per failing cell.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.exec.cache import ResultCache
from repro.exec.cache_tiers import CacheTier, TieredResultCache
from repro.exec.executor import EXECUTOR_NAMES
from repro.exec.runner import AppWorkloadSpec, SweepPointSpec, SweepRunner
from repro.obs.registry import MetricsRegistry, use_registry
from repro.sim.config import CacheConfig, SimConfig
from repro.util.units import MB

#: Cache arrangements the matrix crosses every backend with.
CACHE_MODES = ("none", "single", "tiered")

#: Worker processes for the parallel backends (two points, two workers).
JOBS = 2

SCALE = 0.05


def contract_points() -> list[SweepPointSpec]:
    """The canonical two-point sweep (same shape as the shm suite)."""
    workload = AppWorkloadSpec(app="venus", scale=SCALE, n_copies=2)
    return [
        SweepPointSpec(
            workload=workload,
            config=SimConfig(cache=CacheConfig(size_bytes=mb * MB)),
            label=f"venus {mb}MB",
        )
        for mb in (8, 32)
    ]


def make_cache(mode: str, root: Path):
    """One cache arrangement rooted under ``root`` (None for mode 'none')."""
    if mode == "none":
        return None
    if mode == "single":
        return ResultCache(Path(root) / "single")
    if mode == "tiered":
        return TieredResultCache(
            local=CacheTier(Path(root) / "local", name="local"),
            shared=CacheTier(Path(root) / "shared", name="shared"),
        )
    raise ValueError(f"unknown cache mode {mode!r}")


_REFERENCE: list[tuple[str, str]] | None = None


def reference_outcomes() -> list[tuple[str, str]]:
    """Serial, uncached ground truth ``[(key, digest), ...]`` (memoized)."""
    global _REFERENCE
    if _REFERENCE is None:
        results = SweepRunner(jobs=1, cache=None).run(contract_points())
        _REFERENCE = [(r.key, r.result.digest()) for r in results]
    return _REFERENCE


def _outcomes(results) -> list[tuple[str, str]]:
    return [(r.key, r.result.digest()) for r in results]


def warm_executor_for(executor: str) -> str:
    """The backend the warm re-run uses: the next one in rotation.

    Warming on a *different* backend is the interop assertion -- a cache
    entry written under one executor must be served under any other.
    """
    names = list(EXECUTOR_NAMES)
    return names[(names.index(executor) + 1) % len(names)]


def run_combo(executor: str, cache_mode: str, root: Path) -> dict:
    """Check one matrix cell; report ``problems=[]`` on conformance."""
    root = Path(root)
    points = contract_points()
    reference = reference_outcomes()
    problems: list[str] = []

    cold_registry = MetricsRegistry()
    cold_runner = SweepRunner(
        jobs=JOBS, cache=make_cache(cache_mode, root), executor=executor
    )
    with use_registry(cold_registry):
        cold = cold_runner.run(points)
    if _outcomes(cold) != reference:
        problems.append(
            f"cold run on {executor!r} diverged from the serial ground "
            f"truth: {_outcomes(cold)} != {reference}"
        )
    if cold_runner.simulated != len(points):
        problems.append(
            f"cold run simulated {cold_runner.simulated} of "
            f"{len(points)} points"
        )

    warm_exec = warm_executor_for(executor)
    # Fresh cache *objects* over the same directories: interop must not
    # depend on in-process state.
    warm_registry = MetricsRegistry()
    warm_runner = SweepRunner(
        jobs=JOBS, cache=make_cache(cache_mode, root), executor=warm_exec
    )
    with use_registry(warm_registry):
        warm = warm_runner.run(points)
    if _outcomes(warm) != reference:
        problems.append(
            f"warm run on {warm_exec!r} diverged: "
            f"{_outcomes(warm)} != {reference}"
        )
    if cache_mode == "none":
        if warm_runner.simulated != len(points):
            problems.append(
                "uncached warm run must recompute every point, "
                f"simulated only {warm_runner.simulated}"
            )
    else:
        if warm_runner.simulated != 0:
            problems.append(
                f"warm run on a populated {cache_mode!r} cache recomputed "
                f"{warm_runner.simulated} point(s)"
            )
        if not all(r.cached for r in warm):
            problems.append("warm run left points unflagged as cached")
    if cache_mode == "tiered":
        cold_counters = cold_registry.counters()
        warm_counters = warm_registry.counters()
        if cold_counters.get("exec.cache.local.stores", 0) < len(points):
            problems.append(
                f"cold tiered run recorded too few local stores: "
                f"{cold_counters}"
            )
        if cold_counters.get("exec.cache.shared.writebacks", 0) < len(points):
            problems.append(
                f"cold tiered run recorded too few shared writebacks: "
                f"{cold_counters}"
            )
        if warm_counters.get("exec.cache.local.hits", 0) != len(points):
            problems.append(
                f"warm tiered run not served from the local tier: "
                f"{warm_counters}"
            )
    return {
        "executor": executor,
        "warm_executor": warm_exec,
        "cache_mode": cache_mode,
        "cold": _outcomes(cold),
        "warm": _outcomes(warm),
        "problems": problems,
    }


def iter_matrix():
    for executor in EXECUTOR_NAMES:
        for cache_mode in CACHE_MODES:
            yield executor, cache_mode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts",
        type=Path,
        default=None,
        help="directory for per-failure JSON reports",
    )
    args = parser.parse_args(argv)
    failures = 0
    for executor, cache_mode in iter_matrix():
        with tempfile.TemporaryDirectory(prefix="contract-") as tmp:
            report = run_combo(executor, cache_mode, Path(tmp))
        ok = not report["problems"]
        status = "ok" if ok else "FAIL"
        print(
            f"{status:4} cold={executor:6} warm={report['warm_executor']:6} "
            f"cache={cache_mode}"
        )
        if not ok:
            failures += 1
            for problem in report["problems"]:
                print(f"     - {problem}")
            if args.artifacts is not None:
                args.artifacts.mkdir(parents=True, exist_ok=True)
                path = args.artifacts / f"{executor}-{cache_mode}.json"
                path.write_text(json.dumps(report, indent=2))
                print(f"     wrote {path}")
    n = len(EXECUTOR_NAMES) * len(CACHE_MODES)
    print(f"{n - failures}/{n} conformant")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
