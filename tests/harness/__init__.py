"""Reusable differential-testing harness.

The simulator now has three implementations that must agree bit for bit
-- the legacy per-block cache, the run-coalesced fast cache, and the
run-level batch engine layered on either.  :mod:`tests.harness.differential`
runs any (workload, config, fault-plan, cache-impl, engine-impl) tuple
through both engines and compares full result digests, with a field-level
divergence report when they differ.
"""

from tests.harness.differential import (  # noqa: F401
    DifferentialCase,
    PairOutcome,
    QUICK_MATRIX,
    assert_equivalent,
    describe_divergence,
    run_case,
    run_pair,
)
