"""Multi-CPU scheduling and Sprite-style delayed writes."""

import numpy as np
import pytest

from repro.sim.cache import BufferCache
from repro.sim.config import CacheConfig, DiskConfig, SimConfig
from repro.sim.devices import DiskModel
from repro.sim.events import Engine
from repro.sim.experiments import n_plus_one_rule
from repro.sim.metrics import Metrics
from repro.sim.procmodel import relabel_copies
from repro.sim.scheduler import RoundRobinScheduler
from repro.sim.system import simulate
from repro.trace import flags as F
from repro.trace.array import TraceArray
from repro.util.errors import SimulationError
from repro.util.units import KB, MB, seconds_to_ticks


def make_trace(n_ios=10, *, compute_ticks=1000, length=32 * KB, pid=1, fid=1,
               write=False):
    rt = F.make_record_type(write=write, logical=True)
    clock = np.cumsum(np.full(n_ios, compute_ticks))
    return TraceArray.from_columns(
        record_type=np.full(n_ios, rt),
        file_id=np.full(n_ios, fid),
        process_id=np.full(n_ios, pid),
        operation_id=np.arange(n_ios),
        offset=np.arange(n_ios) * length,
        length=np.full(n_ios, length),
        start_time=clock,
        duration=np.zeros(n_ios),
        process_clock=clock,
    )


class TestMultiCPU:
    def test_two_cpus_halve_compute_time(self):
        # Two pure-compute processes (write-behind absorbs all I/O).
        t1 = make_trace(4, pid=1, fid=1, write=True,
                        compute_ticks=seconds_to_ticks(1.0))
        t2 = make_trace(4, pid=2, fid=2, write=True,
                        compute_ticks=seconds_to_ticks(1.0))
        one = simulate([t1, t2], SimConfig().with_scheduler(n_cpus=1))
        two = simulate([t1, t2], SimConfig().with_scheduler(n_cpus=2))
        assert two.completion_seconds == pytest.approx(
            one.completion_seconds / 2, rel=0.05
        )
        assert two.utilization > 0.99

    def test_idle_counts_all_cpus(self):
        # One compute-bound job on two CPUs: one CPU is always idle.
        t1 = make_trace(4, pid=1, fid=1, write=True,
                        compute_ticks=seconds_to_ticks(1.0))
        r = simulate([t1], SimConfig().with_scheduler(n_cpus=2))
        assert r.utilization == pytest.approx(0.5, abs=0.02)
        assert r.idle_seconds == pytest.approx(r.completion_seconds, rel=0.05)

    def test_more_cpus_than_jobs_is_fine(self):
        t1 = make_trace(3, pid=1, fid=1)
        r = simulate([t1], SimConfig().with_scheduler(n_cpus=8))
        assert r.processes[1].finished

    def test_rejects_zero_cpus(self):
        with pytest.raises(SimulationError):
            RoundRobinScheduler(
                Engine(), SimConfig().scheduler, Metrics(), n_cpus=0
            )

    def test_n_plus_one_rule_io_bound_saturates_low(self):
        points = n_plus_one_rule(
            app="venus", n_cpus=2, max_extra_jobs=1, cache_mb=48, scale=0.1
        )
        # I/O-intensive jobs: n+1 jobs nowhere near keep n CPUs busy.
        assert points[-1].n_jobs == 3
        assert points[-1].utilization < 0.8

    def test_n_plus_one_rule_compute_bound_saturates_high(self):
        points = n_plus_one_rule(
            app="upw", n_cpus=2, max_extra_jobs=1, cache_mb=48, scale=0.25
        )
        assert points[0].utilization > 0.95  # even n jobs suffice


class DelayedHarness:
    def __init__(self, delay=1.0, size_mb=4):
        self.engine = Engine()
        self.metrics = Metrics()
        self.disk = DiskModel(DiskConfig(rotation_period_s=0.0), seed=0)
        self.cache = BufferCache(
            CacheConfig(
                size_bytes=size_mb * MB,
                flush_delay_s=delay,
                write_behind=True,
            ),
            self.engine,
            self.disk,
            self.metrics,
        )

    def write(self, fid, offset, length):
        self.cache.write(fid, offset, length, 1, lambda p=0.0: None)


class TestDelayedWrites:
    def test_flush_happens_after_delay(self):
        h = DelayedHarness(delay=2.0)
        h.write(1, 0, 64 * KB)
        assert h.disk.requests == 0  # nothing flushed yet
        h.engine.run()
        assert h.disk.requests == 1
        assert h.engine.now >= 2.0

    def test_deleted_file_never_reaches_disk(self):
        # The Sprite result: a temporary deleted before the delay expires
        # is never written to disk.
        h = DelayedHarness(delay=30.0)
        h.write(1, 0, 64 * KB)
        cancelled = h.cache.discard_file(1)
        assert cancelled == 1
        h.engine.run()
        assert h.disk.requests == 0
        assert h.metrics.cache.writes_cancelled == 1

    def test_survivor_files_still_flush(self):
        h = DelayedHarness(delay=1.0)
        h.write(1, 0, 64 * KB)   # temp, deleted
        h.write(2, 0, 64 * KB)   # permanent
        h.cache.discard_file(1)
        h.engine.run()
        assert h.disk.requests == 1
        assert h.metrics.cache.writes_cancelled == 1

    def test_discard_frees_frames(self):
        h = DelayedHarness(delay=30.0, size_mb=1)
        h.write(1, 0, 512 * KB)
        before = h.cache.resident_blocks
        h.cache.discard_file(1)
        assert h.cache.resident_blocks < before

    def test_zero_delay_is_immediate_writebehind(self):
        h = DelayedHarness(delay=0.0)
        h.write(1, 0, 64 * KB)
        assert h.disk.requests == 1  # flush issued immediately

    def test_overlapping_delayed_flushes_not_double_counted(self):
        # Regression: rewriting an extent during its flush delay queues a
        # second delayed flush over the SAME block objects.  The first
        # flush writes them (DIRTY -> FLUSHING -> VALID); the second must
        # then find nothing dirty and write nothing.  An earlier version
        # wrote the full extent once per overlapping flush, so every
        # rewrite-within-delay inflated the disk write statistics.
        h = DelayedHarness(delay=1.0)
        h.write(1, 0, 64 * KB)
        h.engine.run(until=0.5)
        h.write(1, 0, 64 * KB)  # rewrite inside the delay window
        h.engine.run()
        assert h.disk.requests == 1
        assert h.metrics.disk_write_series.total == pytest.approx(
            64 * KB / MB
        )

    def test_partially_overlapping_delayed_flushes_write_each_block_once(self):
        # Extents [0, 32K) and [16K, 48K) overlap in blocks 4-7.  The
        # first flush covers 0-7; the second must skip the already
        # flushed 4-7 and write only its own tail (8-11) -- the
        # flush/evict race ordering: flushed-under-you blocks leave the
        # extent, they are not re-written.
        h = DelayedHarness(delay=1.0)
        h.write(1, 0, 32 * KB)
        h.engine.run(until=0.5)
        h.write(1, 16 * KB, 32 * KB)
        h.engine.run()
        assert h.disk.requests == 2
        # 48 KB of distinct dirty blocks, written exactly once each.
        assert h.metrics.disk_write_series.total == pytest.approx(
            48 * KB / MB
        )

    def test_delay_does_not_cancel_supercomputer_writes(self):
        # Section 2.1's argument: staging files all survive, so delaying
        # never *cancels* a write (no short-lived temporaries).  At
        # replay scale 0.1 the data-set cycles compress to less than the
        # 5 s delay, so overlapping rewrites of the same blocks coalesce
        # into one flush -- traffic may drop, but only via coalescing,
        # never via cancellation.  (An earlier version of the flusher
        # wrote the full extent once per overlapping delayed flush,
        # double-counting rewritten blocks; see
        # test_overlapping_delayed_flushes_not_double_counted.)
        from repro.workloads import generate_workload

        venus = generate_workload("venus", scale=0.1)
        traces = relabel_copies(venus.trace, 2)
        base = SimConfig(cache=CacheConfig(size_bytes=128 * MB))
        delayed = base.with_cache(size_bytes=128 * MB, flush_delay_s=5.0)
        r0 = simulate(traces, base)
        r1 = simulate(traces, delayed)
        assert r1.cache.writes_cancelled == 0
        # Coalescing can only reduce traffic, never add to it.
        assert r1.disk_write_rate.total <= r0.disk_write_rate.total + 0.01
        # The surviving files still flush -- the delay defers writes, it
        # does not drop them.
        assert r1.disk_write_rate.total > 0
