"""Buffer cache unit tests: hits, misses, read-ahead, write-behind, frames."""

import pytest

from repro.sim.cache import BlockState, BufferCache
from repro.sim.config import CacheConfig, DiskConfig, ssd_cache
from repro.sim.devices import DiskModel
from repro.sim.events import Engine
from repro.sim.metrics import Metrics
from repro.util.units import KB, MB


class Harness:
    """A cache wired to an engine and a rotation-free disk."""

    def __init__(self, **cache_kw):
        file_sizes = cache_kw.pop("file_sizes", {1: 64 * MB, 2: 64 * MB})
        self.engine = Engine()
        self.metrics = Metrics()
        self.disk = DiskModel(DiskConfig(rotation_period_s=0.0), seed=0)
        if cache_kw.pop("ssd", False):
            config = ssd_cache(cache_kw.pop("size_bytes", 1 * MB), **cache_kw)
        else:
            cache_kw.setdefault("size_bytes", 1 * MB)
            cache_kw.setdefault("block_bytes", 4 * KB)
            config = CacheConfig(**cache_kw)
        self.cache = BufferCache(
            config, self.engine, self.disk, self.metrics, file_sizes=file_sizes
        )
        self.completions: list[float] = []

    def read(self, offset, length, fid=1, owner=1):
        self.cache.read(fid, offset, length, owner, self._done)

    def write(self, offset, length, fid=1, owner=1):
        self.cache.write(fid, offset, length, owner, self._done)

    def _done(self, penalty=0.0):
        self.completions.append(self.engine.now + penalty)

    def run(self):
        self.engine.run(max_events=100_000)


class TestReadPath:
    def test_cold_miss_then_hit(self):
        h = Harness(read_ahead=False)
        h.read(0, 16 * KB)
        h.run()
        assert len(h.completions) == 1
        assert h.completions[0] > 0  # waited for the disk
        assert h.metrics.cache.block_misses == 4
        h.read(0, 16 * KB)  # now resident
        assert len(h.completions) == 2  # completed inline
        assert h.metrics.cache.block_hits == 4

    def test_partial_hit_issues_only_missing_run(self):
        h = Harness(read_ahead=False)
        h.read(0, 8 * KB)
        h.run()
        before = h.disk.requests
        h.read(0, 16 * KB)  # blocks 0-1 resident, 2-3 missing
        h.run()
        assert h.disk.requests == before + 1
        assert h.metrics.cache.block_misses == 2 + 2

    def test_inflight_coalescing(self):
        # Two concurrent reads of the same blocks: one disk request.
        h = Harness(read_ahead=False)
        h.read(0, 16 * KB)
        h.read(0, 16 * KB)
        h.run()
        assert h.disk.requests == 1
        assert len(h.completions) == 2
        assert h.metrics.cache.block_inflight_hits == 4

    def test_rejects_nonpositive(self):
        h = Harness()
        with pytest.raises(Exception):
            h.read(0, 0)


class TestWritePath:
    def test_write_behind_completes_inline(self):
        h = Harness(write_behind=True)
        h.write(0, 64 * KB)
        # absorbed before any event ran
        assert len(h.completions) == 1
        assert h.metrics.cache.writes_absorbed == 1
        assert h.cache.outstanding_flushes == 1
        h.run()
        assert h.cache.outstanding_flushes == 0

    def test_write_through_waits_for_disk(self):
        h = Harness(write_behind=False)
        h.write(0, 64 * KB)
        assert len(h.completions) == 0
        h.run()
        assert len(h.completions) == 1
        assert h.completions[0] > 0

    def test_written_blocks_readable_after_flush(self):
        h = Harness(write_behind=True, read_ahead=False)
        h.write(0, 16 * KB)
        h.run()
        misses_before = h.metrics.cache.block_misses
        h.read(0, 16 * KB)
        assert h.metrics.cache.block_misses == misses_before
        assert len(h.completions) == 2


class TestReadAhead:
    def test_sequential_pattern_triggers_prefetch(self):
        h = Harness(read_ahead=True, size_bytes=8 * MB)
        h.read(0, 64 * KB)
        h.run()
        assert h.metrics.cache.prefetch_issued == 0  # first read: no pattern
        h.read(64 * KB, 64 * KB)  # sequential: prefetcher wakes
        h.run()
        assert h.metrics.cache.prefetch_issued > 0
        # The next sequential read is already resident.
        before = h.metrics.cache.readahead_hits
        h.read(128 * KB, 64 * KB)
        assert h.metrics.cache.readahead_hits > before

    def test_random_pattern_no_prefetch(self):
        h = Harness(read_ahead=True)
        h.read(0, 16 * KB)
        h.run()
        h.read(10 * MB, 16 * KB)
        h.run()
        h.read(3 * MB, 16 * KB)
        h.run()
        assert h.metrics.cache.prefetch_issued == 0

    def test_prefetch_stops_at_eof(self):
        h = Harness(read_ahead=True, file_sizes={1: 128 * KB})
        h.read(0, 64 * KB)
        h.run()
        h.read(64 * KB, 64 * KB)  # sequential, but file ends here
        h.run()
        assert h.metrics.cache.prefetch_issued == 0

    def test_disabled(self):
        h = Harness(read_ahead=False)
        h.read(0, 64 * KB)
        h.run()
        h.read(64 * KB, 64 * KB)
        h.run()
        assert h.metrics.cache.prefetch_issued == 0

    def test_auto_depth_grows_with_cache(self):
        small = CacheConfig(size_bytes=1 * MB)
        large = CacheConfig(size_bytes=64 * MB)
        assert small.auto_depth(456 * KB) == 1
        assert large.auto_depth(456 * KB) > small.auto_depth(456 * KB)
        fixed = CacheConfig(read_ahead_depth=3)
        assert fixed.auto_depth(456 * KB) == 3


class TestFrames:
    def test_lru_eviction(self):
        # Cache of 16 blocks (64 KB): read 32 KB, then another 48 KB; the
        # oldest blocks must be evicted.
        h = Harness(size_bytes=64 * KB, read_ahead=False)
        h.read(0, 32 * KB)
        h.run()
        h.read(32 * KB, 48 * KB)
        h.run()
        assert h.cache.resident_blocks <= 16
        # Re-reading block 0 misses again (evicted).
        misses = h.metrics.cache.block_misses
        h.read(0, 4 * KB)
        h.run()
        assert h.metrics.cache.block_misses == misses + 1

    def test_frame_stall_when_all_dirty(self):
        # Tiny cache, write-behind: a burst of writes can exceed the
        # frames; later writes park until flushes land.
        h = Harness(size_bytes=32 * KB, write_behind=True, read_ahead=False)
        for i in range(4):
            h.write(i * 32 * KB, 32 * KB)
        assert h.metrics.cache.frame_stalls > 0
        h.run()
        assert len(h.completions) == 4  # everyone completed eventually

    def test_ownership_cap(self):
        h = Harness(
            size_bytes=1 * MB, read_ahead=False, max_blocks_per_process=8
        )
        h.read(0, 32 * KB, owner=1)  # 8 blocks: at cap
        h.run()
        h.read(64 * KB, 32 * KB, owner=1)  # must recycle its own
        h.run()
        assert h.cache.owner_blocks(1) <= 8
        # another process is unaffected
        h.read(0, 32 * KB, fid=2, owner=2)
        h.run()
        assert h.cache.owner_blocks(2) == 8

    def test_hit_and_miss_counts_balance(self):
        h = Harness(read_ahead=False)
        h.read(0, 40 * KB)
        h.run()
        h.read(20 * KB, 40 * KB)
        h.run()
        stats = h.metrics.cache
        # 40 KB spans 10 blocks; the second read overlaps 5 of them.
        assert stats.block_requests == 20
        assert stats.block_hits == 5
        assert stats.block_misses == 15
        assert stats.block_hits + stats.block_misses + stats.block_inflight_hits == (
            stats.block_requests
        )


class TestSSDPenalties:
    def test_hit_penalty_returned(self):
        h = Harness(ssd=True, size_bytes=4 * MB)
        h.read(0, 64 * KB)
        h.run()
        h.completions.clear()
        h.read(0, 64 * KB)  # resident: inline, with penalty
        assert len(h.completions) == 1
        penalty = h.completions[0] - h.engine.now
        assert penalty == pytest.approx(50e-6 + 64 * 1e-6)

    def test_mem_cache_penalty_zero(self):
        config = CacheConfig()
        assert config.hit_penalty_s(456 * KB) == 0.0
        ssd = ssd_cache(256 * MB)
        assert ssd.hit_penalty_s(456 * KB) == pytest.approx(50e-6 + 456e-6)
