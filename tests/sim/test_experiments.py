"""Section-6 experiment harness: the claims at test scale.

These run the real pipeline (generate venus -> simulate) at small scale,
so they assert *shape*: orderings and large ratios, not absolute numbers.
"""

import pytest

from repro.sim import (
    buffer_cap_ablation,
    cache_size_sweep,
    no_idle_execution_seconds,
    readahead_ablation,
    run_two_venus,
    ssd_utilization_per_app,
    two_copies,
    writebehind_ablation,
)
from repro.workloads import generate_workload

SCALE = 0.1


@pytest.fixture(scope="module")
def sweep():
    return cache_size_sweep(
        cache_sizes_mb=(4, 32, 128), block_sizes_kb=(4,), scale=SCALE
    )


class TestCacheSizeSweep:
    def test_idle_decreases_with_cache_size(self, sweep):
        idles = [p.idle_seconds for p in sweep]
        assert idles[0] > idles[1] > idles[2]

    def test_large_cache_near_full_utilization(self, sweep):
        # Figure 8: idle ~0 once both data sets fit (128 MB and up).
        assert sweep[-1].utilization > 0.97
        assert sweep[-1].idle_seconds < 0.05 * no_idle_execution_seconds(SCALE)

    def test_small_cache_substantial_idle(self, sweep):
        base = no_idle_execution_seconds(SCALE)
        assert sweep[0].idle_seconds > 0.5 * base

    def test_hit_fraction_grows(self, sweep):
        hits = [p.hit_fraction for p in sweep]
        assert hits[0] < hits[1] < hits[2]


class TestWriteBehind:
    def test_write_behind_slashes_idle(self):
        without, with_wb = writebehind_ablation(scale=SCALE)
        # Paper: 211 s -> 1 s. Demand at least an order of magnitude.
        assert without.idle_seconds > 10 * max(with_wb.idle_seconds, 0.1)
        assert with_wb.utilization > without.utilization


class TestReadAhead:
    def test_read_ahead_helps_at_memory_sizes(self):
        without, with_ra = readahead_ablation(cache_mb=32, scale=SCALE)
        assert with_ra.idle_seconds < 0.6 * without.idle_seconds


class TestBufferCap:
    def test_cap_worsens_utilization(self):
        # Section 6.2: the cap "did not relieve the problem, and actually
        # worsened CPU utilization in several cases."
        uncapped, capped = buffer_cap_ablation(cache_mb=32, scale=SCALE)
        assert capped.utilization < uncapped.utilization


class TestSSD:
    def test_all_apps_high_utilization(self):
        runs = ssd_utilization_per_app(
            scales={
                "bvi": 0.03,
                "forma": 0.06,
                "ccm": 0.1,
                "gcm": 0.1,
                "les": 0.15,
                "venus": 0.1,
                "upw": 0.1,
            }
        )
        assert len(runs) == 7
        utils = {r.name: r.utilization for r in runs}
        # "all but one ... nearly completely utilized" -- demand >= 6 of
        # 7 above 97%, and everyone above 90%.
        high = [u for u in utils.values() if u > 0.97]
        assert len(high) >= 6
        assert min(utils.values()) > 0.90

    def test_ssd_beats_small_memory_cache(self):
        mem = run_two_venus(cache_mb=8, scale=SCALE, ssd=False)
        ssd = run_two_venus(cache_mb=256, scale=SCALE, ssd=True)
        assert ssd.utilization > mem.utilization
        assert ssd.idle_seconds < 0.2 * mem.idle_seconds


class TestTwoCopies:
    def test_copies_do_not_share_files(self):
        venus = generate_workload("venus", scale=SCALE)
        a, b = two_copies(venus)
        assert set(a.file_id.tolist()).isdisjoint(set(b.file_id.tolist()))
        assert set(a.process_ids().tolist()) != set(b.process_ids().tolist())
