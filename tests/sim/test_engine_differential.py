"""Equivalence of the batch kernel and the event engine, swept randomly.

The differential harness (:mod:`tests.harness`) is exercised two ways:

* the named quick matrix -- the same cases CI runs standalone -- as a
  parametrized suite, and
* hypothesis-driven sweeps over synthetic workloads: random run/jump
  access patterns, cache geometries, write policies, async mixes and
  crash-at-T fault plans.  Every drawn tuple must produce bit-identical
  digests from both engines; a failure shrinks to a minimal workload and
  names the diverging result fields.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import CacheConfig, SimConfig
from repro.sim.faults import FaultPlan
from repro.trace import flags as F
from repro.trace.array import TraceArray
from repro.util.units import KB, MB
from tests.harness import QUICK_MATRIX, assert_equivalent, run_case

BLOCK = 4 * KB


@pytest.mark.parametrize("case", QUICK_MATRIX, ids=lambda c: c.name)
def test_quick_matrix_case(case):
    outcome = run_case(case)
    assert outcome.match, "\n".join(outcome.divergence)


# ---------------------------------------------------------------------------
# Random synthetic workloads
# ---------------------------------------------------------------------------
@st.composite
def synthetic_trace(draw, process_id: int) -> TraceArray:
    """A single-process trace of sequential runs broken by random jumps.

    This mirrors the paper's structure -- constant-size sequential spans
    -- while the jumps, direction changes and async records exercise the
    batch kernel's bail-out paths.
    """
    n_runs = draw(st.integers(1, 6))
    file_ids: list[int] = []
    offsets: list[int] = []
    lengths: list[int] = []
    types: list[int] = []
    deltas: list[int] = []
    for _ in range(n_runs):
        fid = draw(st.integers(0, 2))
        run_len = draw(st.integers(1, 6))
        length = draw(st.integers(1, 8)) * BLOCK
        offset = draw(st.integers(0, 200)) * BLOCK
        rt = F.TRACE_LOGICAL_RECORD
        if draw(st.booleans()):
            rt |= F.TRACE_WRITE
        if draw(st.integers(0, 9)) == 0:
            rt |= F.TRACE_ASYNC
        for _ in range(run_len):
            file_ids.append(fid)
            offsets.append(offset)
            lengths.append(length)
            types.append(rt)
            deltas.append(draw(st.integers(0, 2000)))
            offset += length
    clock = np.cumsum(deltas)
    n = len(file_ids)
    return TraceArray.from_columns(
        record_type=types,
        file_id=file_ids,
        process_id=[process_id] * n,
        operation_id=list(range(n)),
        offset=offsets,
        length=lengths,
        process_clock=clock,
    )


@st.composite
def workload_strategy(draw) -> list[TraceArray]:
    n_procs = draw(st.integers(1, 3))
    return [draw(synthetic_trace(pid)) for pid in range(1, n_procs + 1)]


@st.composite
def config_strategy(draw) -> SimConfig:
    config = SimConfig(
        cache=CacheConfig(
            size_bytes=draw(st.sampled_from([256 * KB, 1 * MB, 4 * MB])),
            block_bytes=draw(st.sampled_from([4 * KB, 8 * KB])),
            read_ahead=draw(st.booleans()),
            write_behind=draw(st.booleans()),
            flush_delay_s=draw(st.sampled_from([0.0, 0.5])),
        )
    )
    n_cpus = draw(st.sampled_from([1, 1, 2]))
    if n_cpus != 1:
        config = config.with_scheduler(n_cpus=n_cpus)
    return config


@settings(max_examples=40, deadline=None)
@given(traces=workload_strategy(), config=config_strategy())
def test_batch_matches_event_on_random_workloads(traces, config):
    assert_equivalent(traces, config, label="random-workload")


@settings(max_examples=20, deadline=None)
@given(
    traces=workload_strategy(),
    config=config_strategy(),
    crash_at=st.floats(0.5, 30.0),
)
def test_batch_matches_event_under_crash_plans(traces, config, crash_at):
    plan = FaultPlan.from_spec(f"crash_at={crash_at}")
    assert_equivalent(traces, plan.apply(config), label="crash-plan")


@settings(max_examples=20, deadline=None)
@given(
    traces=workload_strategy(),
    config=config_strategy(),
    seed=st.integers(0, 999),
)
def test_batch_matches_event_under_error_plans(traces, config, seed):
    plan = FaultPlan.from_spec(
        f"error=0.1,slow=0.1,seed={seed},max_retries=3"
    )
    assert_equivalent(traces, plan.apply(config), label="error-plan")
