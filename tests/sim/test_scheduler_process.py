"""Round-robin scheduler and trace-replay processes."""

import numpy as np
import pytest

from repro.sim.config import CacheConfig, SimConfig
from repro.sim.procmodel import relabel_copies, split_trace_by_process
from repro.sim.system import SimulatedSystem, simulate
from repro.trace import flags as F
from repro.trace.array import TraceArray
from repro.util.errors import SimulationError
from repro.util.units import KB, MB, seconds_to_ticks


def make_trace(
    n_ios=10,
    *,
    compute_ticks=1000,
    length=32 * KB,
    write=False,
    pid=1,
    asynchronous=False,
    fid=1,
):
    """A simple sequential single-process trace."""
    rt = F.make_record_type(write=write, logical=True, asynchronous=asynchronous)
    clock = np.cumsum(np.full(n_ios, compute_ticks))
    return TraceArray.from_columns(
        record_type=np.full(n_ios, rt),
        file_id=np.full(n_ios, fid),
        process_id=np.full(n_ios, pid),
        operation_id=np.arange(n_ios),
        offset=np.arange(n_ios) * length,
        length=np.full(n_ios, length),
        start_time=clock,  # wall ~ cpu for generation purposes
        duration=np.zeros(n_ios),
        process_clock=clock,
    )


class TestSingleProcess:
    def test_cpu_time_conserved(self):
        trace = make_trace(20, compute_ticks=5000)
        result = simulate([trace])
        p = result.processes[1]
        # 20 x 5000 ticks = 1.0 s of compute
        assert p.cpu_seconds == pytest.approx(1.0, abs=1e-6)
        assert p.n_ios == 20
        assert p.finished

    def test_sync_reads_block(self):
        trace = make_trace(5, write=False)
        result = simulate(
            [trace], SimConfig().with_cache(read_ahead=False, size_bytes=1 * MB)
        )
        p = result.processes[1]
        assert p.blocked_seconds > 0
        assert result.wall_seconds > p.cpu_seconds

    def test_write_behind_absorbs_writes(self):
        trace = make_trace(5, write=True)
        result = simulate([trace], SimConfig().with_cache(write_behind=True))
        p = result.processes[1]
        assert p.blocked_seconds == 0.0
        assert result.utilization > 0.99

    def test_write_through_blocks(self):
        trace = make_trace(5, write=True)
        result = simulate([trace], SimConfig().with_cache(write_behind=False))
        assert result.processes[1].blocked_seconds > 0

    def test_async_never_blocks(self):
        trace = make_trace(5, write=False, asynchronous=True)
        result = simulate(
            [trace], SimConfig().with_cache(read_ahead=False)
        )
        assert result.processes[1].blocked_seconds == 0.0

    def test_wall_covers_flush_drain(self):
        trace = make_trace(3, write=True)
        result = simulate([trace], SimConfig().with_cache(write_behind=True))
        # the flush tail extends past process completion
        assert result.wall_seconds >= result.completion_seconds
        assert result.disk_write_rate.total == pytest.approx(
            3 * 32 * KB / MB, rel=1e-6
        )

    def test_empty_trace_rejected_gracefully(self):
        with pytest.raises(SimulationError):
            simulate([])


class TestMultiProcess:
    def test_two_processes_share_cpu(self):
        t1 = make_trace(10, pid=1, fid=1)
        t2 = make_trace(10, pid=2, fid=2)
        result = simulate([t1, t2], SimConfig().with_cache(read_ahead=False))
        assert result.processes[1].finished
        assert result.processes[2].finished
        total_cpu = sum(p.cpu_seconds for p in result.processes.values())
        assert result.busy_seconds == pytest.approx(total_cpu, abs=1e-9)

    def test_overlap_reduces_idle(self):
        # One I/O-bound process leaves idle gaps a second can fill.
        t1 = make_trace(20, pid=1, fid=1, compute_ticks=100)
        solo = simulate([t1], SimConfig().with_cache(read_ahead=False))
        t2 = make_trace(20, pid=2, fid=2, compute_ticks=100)
        both = simulate(
            [make_trace(20, pid=1, fid=1, compute_ticks=100), t2],
            SimConfig().with_cache(read_ahead=False),
        )
        assert both.utilization > solo.utilization

    def test_duplicate_pids_rejected(self):
        t1 = make_trace(3, pid=1)
        t2 = make_trace(3, pid=1)
        with pytest.raises(SimulationError):
            SimulatedSystem([t1, t2])

    def test_quantum_preemption(self):
        # A single long compute block against a tiny quantum: many
        # preemptions, same total CPU.
        trace = make_trace(2, compute_ticks=seconds_to_ticks(1.0))
        config = SimConfig().with_scheduler(quantum_s=0.01)
        system = SimulatedSystem([trace], config)
        result = system.run()
        assert system.scheduler.preemptions >= 90
        assert result.processes[1].cpu_seconds == pytest.approx(2.0, abs=1e-6)

    def test_switch_overhead_accounted(self):
        t1 = make_trace(10, pid=1, fid=1)
        t2 = make_trace(10, pid=2, fid=2)
        config = SimConfig().with_scheduler(switch_overhead_s=1e-3)
        result = simulate([t1, t2], config)
        assert result.switch_seconds > 0
        assert result.accounted_busy_seconds > result.busy_seconds


class TestHelpers:
    def test_relabel_copies(self):
        trace = make_trace(5, pid=7)
        copies = relabel_copies(trace, 3)
        assert [int(c.process_id[0]) for c in copies] == [1, 2, 3]
        fids = {int(c.file_id[0]) for c in copies}
        assert len(fids) == 3  # disjoint file spaces

    def test_relabel_rejects_multiprocess(self):
        t = TraceArray.concatenate([make_trace(2, pid=1), make_trace(2, pid=2)])
        with pytest.raises(SimulationError):
            relabel_copies(t, 2)

    def test_split_trace_by_process(self):
        t = TraceArray.concatenate(
            [make_trace(2, pid=1), make_trace(3, pid=2)]
        ).sorted_by_start()
        parts = split_trace_by_process(t)
        assert len(parts[1]) == 2
        assert len(parts[2]) == 3

    def test_trace_process_rejects_multiprocess(self):
        t = TraceArray.concatenate([make_trace(2, pid=1), make_trace(2, pid=2)])
        with pytest.raises(SimulationError):
            simulate([t])
