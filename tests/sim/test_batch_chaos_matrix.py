"""Seed-matrix chaos tests: the batch kernel survives fault injection.

Same discipline as the recovery layer's chaos matrix (seeds 11/23/47):
every seeded fault plan -- injected errors, slowdowns, retry exhaustion,
and a timed SSD failure that flips the cache into degraded bypass mode
mid-run -- must produce digest-identical results from the batch kernel
and the event engine.  Fault injection draws randomness only at device
submits, which the batch fast path never reaches, so any divergence here
means the kernel perturbed the RNG stream or the event ordering.
"""

import pytest

from repro.sim.config import SimConfig, ssd_cache
from repro.sim.faults import FaultPlan
from repro.sim.procmodel import relabel_copies
from repro.sim.system import SimulatedSystem
from repro.util.rng import DEFAULT_SEED
from repro.util.units import MB
from repro.workloads.base import generate_workload
from tests.harness import assert_equivalent

SEEDS = (11, 23, 47)


@pytest.fixture(scope="module")
def venus_pair():
    venus = generate_workload("venus", scale=0.05, seed=DEFAULT_SEED)
    return relabel_copies(venus.trace, 2)


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_matches_event_under_seeded_error_plan(venus_pair, seed):
    plan = FaultPlan.from_spec(
        f"error=0.05,slow=0.1,seed={seed},max_retries=4"
    )
    config = plan.apply(SimConfig(cache=ssd_cache(8 * MB)))
    outcome = assert_equivalent(
        venus_pair, config, label=f"error-seed-{seed}"
    )
    # The plan actually fired; a vacuous pass would prove nothing.
    assert outcome.results["event"].faults.injected_errors > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_matches_event_under_retry_exhaustion(venus_pair, seed):
    # A high error rate with a single retry exercises failed reads and
    # writes (abandoned frames, re-queued dirty blocks) on both engines.
    plan = FaultPlan.from_spec(f"error=0.2,seed={seed},max_retries=1")
    config = plan.apply(SimConfig(cache=ssd_cache(8 * MB)))
    outcome = assert_equivalent(
        venus_pair, config, label=f"exhaustion-seed-{seed}"
    )
    faults = outcome.results["event"].faults
    assert faults.failed_reads + faults.failed_writes > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_matches_event_through_ssd_failure(venus_pair, seed):
    # Degraded bypass mode after a timed device failure: the fast read
    # path must disengage the moment the cache degrades.
    plan = FaultPlan.from_spec(f"error=0.02,seed={seed},ssd_fail_at=20")
    config = plan.apply(SimConfig(cache=ssd_cache(8 * MB)))
    outcome = assert_equivalent(
        venus_pair, config, label=f"ssd-fail-seed-{seed}"
    )
    assert outcome.results["event"].faults.degraded_requests > 0


def test_batch_matches_event_through_crash(venus_pair):
    plan = FaultPlan.from_spec("crash_at=10")
    config = plan.apply(SimConfig(cache=ssd_cache(8 * MB)))
    outcome = assert_equivalent(venus_pair, config, label="crash")
    assert outcome.results["event"].faults.crashed
