"""Property-based tests for the recovery layer.

Generated fault schedules and recovery policies, three invariants:

(a) **no lost events** -- every application I/O eventually completes or
    is reported failed: the simulation always drains, every process
    always finishes (crashes excluded by construction here);
(b) **bounded retries** -- no request ever consumes more than
    ``max_retries`` retries (``max_attempts <= max_retries + 1``);
(c) **monotone backoff** -- successive backoff delays never shrink, and
    never exceed the cap, for any jitter draws.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.sim.config import CacheConfig, RecoveryConfig, SimConfig  # noqa: E402
from repro.sim.recovery import backoff_delay  # noqa: E402
from repro.sim.system import simulate  # noqa: E402
from repro.trace import flags as F  # noqa: E402
from repro.trace.array import TraceArray  # noqa: E402
from repro.util.units import KB, MB  # noqa: E402


def mixed_trace(n_ios, *, length=32 * KB):
    """Alternating read/write trace over two files."""
    rts = np.array(
        [F.make_record_type(write=bool(i % 2), logical=True) for i in range(n_ios)]
    )
    clock = np.cumsum(np.full(n_ios, 1000))
    return TraceArray.from_columns(
        record_type=rts,
        file_id=np.where(np.arange(n_ios) % 2, 2, 1),
        process_id=np.full(n_ios, 1),
        operation_id=np.arange(n_ios),
        offset=(np.arange(n_ios) // 2) * length,
        length=np.full(n_ios, length),
        start_time=clock,
        duration=np.zeros(n_ios),
        process_clock=clock,
    )


#: One compact strategy for a "hostile but legal" fault environment.
fault_env = st.fixed_dictionaries(
    {
        "error_rate": st.floats(0.0, 0.6),
        "slow_rate": st.floats(0.0, 0.3),
        "slow_factor": st.floats(1.0, 20.0),
        "fault_seed": st.integers(0, 2**31),
        "max_retries": st.integers(0, 5),
        "timeout_s": st.one_of(st.none(), st.floats(0.01, 1.0)),
        "max_reflushes": st.integers(0, 3),
        "n_ios": st.integers(2, 24),
    }
)


def _config(env):
    return (
        SimConfig(cache=CacheConfig(size_bytes=4 * MB))
        .with_faults(
            error_rate=env["error_rate"],
            slow_rate=min(env["slow_rate"], 1.0 - env["error_rate"]),
            slow_factor=env["slow_factor"],
            seed=env["fault_seed"],
        )
        .with_recovery(
            max_retries=env["max_retries"],
            timeout_s=env["timeout_s"],
            max_reflushes=env["max_reflushes"],
        )
    )


class TestNoLostEvents:
    @settings(max_examples=40, deadline=None)
    @given(env=fault_env)
    def test_every_io_completes_or_is_reported_failed(self, env):
        trace = mixed_trace(env["n_ios"])
        r = simulate([trace], _config(env), max_events=200_000)
        # The process replayed its whole trace: nothing hung forever on
        # a failed device request.
        assert r.processes[1].finished
        assert r.processes[1].n_ios == env["n_ios"]
        # Accounting is consistent: everything that went in came out as
        # either delivered or explicitly failed bytes.
        total = r.cache.read_bytes + r.cache.write_bytes
        assert 0 <= r.goodput_bytes <= total

    @settings(max_examples=20, deadline=None)
    @given(env=fault_env)
    def test_deterministic_under_repetition(self, env):
        trace = mixed_trace(env["n_ios"])
        a = simulate([trace], _config(env), max_events=200_000)
        b = simulate([trace], _config(env), max_events=200_000)
        assert a.digest() == b.digest()


class TestBoundedRetries:
    @settings(max_examples=40, deadline=None)
    @given(env=fault_env)
    def test_retry_count_never_exceeds_max_retries(self, env):
        trace = mixed_trace(env["n_ios"])
        r = simulate([trace], _config(env), max_events=200_000)
        assert r.faults.max_attempts <= env["max_retries"] + 1
        if env["max_retries"] == 0:
            assert r.faults.retries == 0


recovery_params = st.fixed_dictionaries(
    {
        "base": st.floats(1e-5, 0.1),
        "factor": st.floats(1.0, 8.0),
        "cap": st.floats(1e-4, 10.0),
        "jitter_frac": st.floats(0.0, 1.0),
        "attempts": st.integers(1, 12),
    }
)


class TestMonotoneBackoff:
    @settings(max_examples=200, deadline=None)
    @given(params=recovery_params, data=st.data())
    def test_delays_monotone_nondecreasing_up_to_cap(self, params, data):
        # Any jitter fraction the config validator admits: the sequence
        # of delays must never shrink, whatever the draws.
        jitter = params["jitter_frac"] * (params["factor"] - 1.0)
        cfg = RecoveryConfig(
            backoff_base_s=params["base"],
            backoff_factor=params["factor"],
            backoff_cap_s=params["cap"],
            backoff_jitter=jitter,
        )
        draws = [
            data.draw(st.floats(0.0, 1.0, exclude_max=True))
            for _ in range(params["attempts"])
        ]
        delays = [backoff_delay(cfg, i, u) for i, u in enumerate(draws)]
        for earlier, later in zip(delays, delays[1:]):
            assert later >= earlier
        for d in delays:
            assert 0.0 < d <= cfg.backoff_cap_s

    def test_cap_reached_and_held(self):
        cfg = RecoveryConfig(
            backoff_base_s=1e-3, backoff_factor=2.0, backoff_cap_s=0.01,
            backoff_jitter=0.0,
        )
        delays = [backoff_delay(cfg, i, 0.0) for i in range(10)]
        assert delays[-1] == cfg.backoff_cap_s
        assert delays == sorted(delays)

    def test_jitter_validation_guards_monotonicity(self):
        # The monotonicity proof needs jitter <= factor - 1; the config
        # constructor enforces exactly that.
        with pytest.raises(ValueError):
            RecoveryConfig(backoff_factor=2.0, backoff_jitter=1.5)
        RecoveryConfig(backoff_factor=2.0, backoff_jitter=1.0)  # boundary OK
