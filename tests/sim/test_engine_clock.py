"""Regression tests for the engine's clock contract and tick snapping.

Two bugs are pinned here:

* ``run(until=t)`` used to leave ``now`` stuck at the last executed
  event, so delays scheduled between bounded runs were silently measured
  from the wrong origin;
* event times built by chained ``now + delay`` accumulate float error
  relative to the 10 microsecond tick base -- after 100k ticks the
  accumulated clock is off the grid by ~2e-12 s and misses exact
  boundaries.  ``tick_s`` snapping makes event times a pure function of
  the tick index.
"""

import pytest

from repro.sim.events import Engine
from repro.util.errors import SimulationError
from repro.util.units import TICK_SECONDS


def drive_chain(engine, n, delay=TICK_SECONDS):
    """Run a self-rearming event ``n`` times; return the final clock."""
    count = [0]

    def rearm():
        count[0] += 1
        if count[0] < n:
            engine.schedule(delay, rearm)

    engine.schedule(delay, rearm)
    engine.run()
    assert count[0] == n
    return engine.now


class TestUntilClockContract:
    def test_until_advances_clock_past_last_event(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run(until=2.0)
        assert engine.now == 2.0

    def test_until_advances_clock_on_empty_calendar(self):
        engine = Engine()
        engine.run(until=3.0)
        assert engine.now == 3.0

    def test_until_with_pending_future_event(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run(until=2.0)
        assert engine.now == 2.0
        assert engine.pending == 1

    def test_delays_between_bounded_runs_measure_from_until(self):
        # The original bug: after run(until=2.0) the clock sat at the
        # last event (0.5), so a subsequent schedule(1.0, ...) fired at
        # 1.5 instead of 3.0.
        engine = Engine()
        log = []
        engine.schedule(0.5, lambda: log.append(engine.now))
        engine.run(until=2.0)
        engine.schedule(1.0, lambda: log.append(engine.now))
        engine.run()
        assert log == [0.5, 3.0]

    def test_event_at_exact_until_boundary_runs(self):
        engine = Engine()
        log = []
        engine.schedule(2.0, lambda: log.append(engine.now))
        engine.run(until=2.0)
        assert log == [2.0]
        assert engine.now == 2.0


class TestTickSnapping:
    def test_rejects_nonpositive_tick(self):
        with pytest.raises(SimulationError):
            Engine(tick_s=0.0)
        with pytest.raises(SimulationError):
            Engine(tick_s=-1e-5)

    def test_accumulation_drifts_without_snapping(self):
        # The bug being fixed, demonstrated: 100k chained 10us delays
        # land short of the exact product 100_000 * TICK_SECONDS (which
        # is exactly 1.0).
        final = drive_chain(Engine(), 100_000)
        assert final != 1.0
        assert abs(final - 1.0) < 1e-9  # drift, not a gross error

    def test_snapping_keeps_the_chain_on_the_grid(self):
        final = drive_chain(Engine(tick_s=TICK_SECONDS), 100_000)
        assert final == 1.0

    def test_snapped_chain_is_path_independent(self):
        # Time is a function of the tick index, not of how the chain
        # got there: every prefix length lands on k * tick exactly.
        for n in (1, 7, 1000):
            assert drive_chain(Engine(tick_s=TICK_SECONDS), n) == n * TICK_SECONDS

    def test_snapped_chain_hits_exact_until_boundary(self):
        # Without snapping the 100_000th tick lands at 0.999...98 and an
        # event nominally at t=1.0 never coincides with until=1.0.
        engine = Engine(tick_s=TICK_SECONDS)
        count = [0]

        def rearm():
            count[0] += 1
            engine.schedule(TICK_SECONDS, rearm)

        engine.schedule(TICK_SECONDS, rearm)
        engine.run(until=1.0)
        assert count[0] == 100_000
        assert engine.now == 1.0

    def test_snapping_rounds_to_nearest_tick(self):
        engine = Engine(tick_s=TICK_SECONDS)
        log = []
        engine.schedule_at(3.4 * TICK_SECONDS, lambda: log.append(engine.now))
        engine.schedule_at(3.6 * TICK_SECONDS, lambda: log.append(engine.now))
        engine.run()
        assert log == [3 * TICK_SECONDS, 4 * TICK_SECONDS]

    def test_snapping_never_moves_times_before_now(self):
        # A delay smaller than half a tick snaps back onto `now` itself
        # (a fixed point of the snap), which is legal, not "in the past".
        engine = Engine(tick_s=TICK_SECONDS)
        engine.schedule(TICK_SECONDS, lambda: engine.schedule(0.4 * TICK_SECONDS, lambda: None))
        engine.run()
        assert engine.now == TICK_SECONDS

    def test_unsnapped_default_behavior_unchanged(self):
        # tick_s=None is the default: exact float times, no rounding.
        engine = Engine()
        log = []
        engine.schedule(0.123456789, lambda: log.append(engine.now))
        engine.run()
        assert log == [0.123456789]
