"""Property-based invariants of the buffer cache under random traffic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import BufferCache
from repro.sim.config import CacheConfig, DiskConfig
from repro.sim.devices import DiskModel
from repro.sim.events import Engine
from repro.sim.metrics import Metrics
from repro.util.units import KB, MB

request_strategy = st.tuples(
    st.booleans(),  # write?
    st.integers(0, 3),  # file id
    st.integers(0, 255),  # offset in 4K blocks
    st.integers(1, 64),  # length in 4K blocks
)


@st.composite
def config_strategy(draw):
    return dict(
        size_bytes=draw(st.sampled_from([64 * KB, 256 * KB, 1 * MB, 8 * MB])),
        block_bytes=draw(st.sampled_from([4 * KB, 8 * KB])),
        read_ahead=draw(st.booleans()),
        write_behind=draw(st.booleans()),
        flush_delay_s=draw(st.sampled_from([0.0, 0.5])),
    )


@settings(max_examples=60, deadline=None)
@given(requests=st.lists(request_strategy, min_size=1, max_size=60), cfg=config_strategy())
def test_cache_invariants_under_random_traffic(requests, cfg):
    engine = Engine()
    metrics = Metrics()
    disk = DiskModel(DiskConfig(rotation_period_s=0.0), seed=0)
    file_sizes = {fid: 512 * 4 * KB for fid in range(4)}
    cache = BufferCache(
        CacheConfig(**cfg), engine, disk, metrics, file_sizes=file_sizes
    )
    completions = []

    n_reads = n_writes = 0
    for write, fid, off_blocks, len_blocks in requests:
        offset = off_blocks * 4 * KB
        length = len_blocks * 4 * KB
        if write:
            n_writes += 1
            cache.write(fid, offset, length, 1, lambda p=0.0: completions.append(1))
        else:
            n_reads += 1
            cache.read(fid, offset, length, 1, lambda p=0.0: completions.append(1))
        # Capacity invariant holds at every step.
        assert cache.resident_blocks <= cache.config.n_blocks

    engine.run(max_events=2_000_000)

    # Every request completed exactly once.
    assert len(completions) == len(requests)
    # All flushes drained.
    assert cache.outstanding_flushes == 0
    # Demand-block accounting balances.
    stats = metrics.cache
    assert (
        stats.block_hits + stats.block_misses + stats.block_inflight_hits
        == stats.block_requests
    )
    assert stats.read_requests == n_reads
    assert stats.write_requests == n_writes
    # Disk never saw more read traffic than (demand misses + prefetch).
    assert cache.resident_blocks <= cache.config.n_blocks


@settings(max_examples=30, deadline=None)
@given(
    requests=st.lists(request_strategy, min_size=1, max_size=40),
    cap=st.integers(4, 64),
)
def test_ownership_cap_never_exceeded_for_clean_caches(requests, cap):
    # With write-behind off and no read-ahead, every allocation is
    # demand-driven; the per-owner block count must respect the cap once
    # all I/O has drained (in-flight blocks are pinned and may briefly
    # exceed it only if a single request is larger than the cap).
    engine = Engine()
    metrics = Metrics()
    disk = DiskModel(DiskConfig(rotation_period_s=0.0), seed=0)
    cache = BufferCache(
        CacheConfig(
            size_bytes=8 * MB,
            read_ahead=False,
            write_behind=False,
            max_blocks_per_process=cap,
        ),
        engine,
        disk,
        metrics,
        file_sizes={fid: 512 * 4 * KB for fid in range(4)},
    )
    max_request_blocks = 0
    for write, fid, off_blocks, len_blocks in requests:
        max_request_blocks = max(max_request_blocks, len_blocks + 1)
        offset = off_blocks * 4 * KB
        length = len_blocks * 4 * KB
        if write:
            cache.write(fid, offset, length, 7, lambda p=0.0: None)
        else:
            cache.read(fid, offset, length, 7, lambda p=0.0: None)
    engine.run(max_events=2_000_000)
    assert cache.owner_blocks(7) <= max(cap, max_request_blocks)


def test_completion_counts_with_overlapping_inflight_reads():
    # Ten overlapping reads of the same region: one disk request, ten
    # completions.
    engine = Engine()
    metrics = Metrics()
    disk = DiskModel(DiskConfig(rotation_period_s=0.0), seed=0)
    cache = BufferCache(
        CacheConfig(size_bytes=1 * MB, read_ahead=False),
        engine,
        disk,
        metrics,
    )
    done = []
    for _ in range(10):
        cache.read(1, 0, 64 * KB, 1, lambda p=0.0: done.append(1))
    engine.run()
    assert len(done) == 10
    assert disk.requests == 1


def test_frame_starvation_resolves():
    # A cache of 8 blocks hammered with 32-block writes: every request
    # must park and still complete.
    engine = Engine()
    metrics = Metrics()
    disk = DiskModel(DiskConfig(rotation_period_s=0.0), seed=0)
    cache = BufferCache(
        CacheConfig(size_bytes=32 * KB, block_bytes=4 * KB, write_behind=True),
        engine,
        disk,
        metrics,
    )
    done = []
    for i in range(6):
        cache.write(1, i * 32 * KB, 32 * KB, 1, lambda p=0.0: done.append(1))
    engine.run(max_events=1_000_000)
    assert len(done) == 6
    assert cache.outstanding_flushes == 0
