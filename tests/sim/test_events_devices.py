"""Event engine and disk model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import DiskConfig
from repro.sim.devices import DiskModel
from repro.sim.events import Engine
from repro.util.errors import SimulationError


class TestEngine:
    def test_runs_in_time_order(self):
        engine = Engine()
        log = []
        engine.schedule(3.0, lambda: log.append("c"))
        engine.schedule(1.0, lambda: log.append("a"))
        engine.schedule(2.0, lambda: log.append("b"))
        engine.run()
        assert log == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_fifo_tie_breaking(self):
        engine = Engine()
        log = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: log.append(i))
        engine.run()
        assert log == [0, 1, 2, 3, 4]

    def test_events_can_schedule_events(self):
        engine = Engine()
        log = []

        def first():
            log.append(engine.now)
            engine.schedule(0.5, lambda: log.append(engine.now))

        engine.schedule(1.0, first)
        engine.run()
        assert log == [1.0, 1.5]

    def test_rejects_past_and_negative(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_max_events_guard(self):
        engine = Engine()

        def rearm():
            engine.schedule(1.0, rearm)

        engine.schedule(1.0, rearm)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_until(self):
        engine = Engine()
        log = []
        engine.schedule(1.0, lambda: log.append(1))
        engine.schedule(5.0, lambda: log.append(5))
        engine.run(until=2.0)
        assert log == [1]
        assert engine.pending == 1

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0, 1000), max_size=50))
    def test_order_property(self, delays):
        engine = Engine()
        seen = []
        for d in delays:
            engine.schedule(d, lambda d=d: seen.append(engine.now))
        engine.run()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)


class TestDiskModel:
    def make(self, **kw):
        return DiskModel(DiskConfig(**kw), seed=1)

    def test_sequential_is_cheap(self):
        disk = self.make()
        first = disk.service_time(1, 0, 4096)
        seq = disk.service_time(1, 4096, 4096)
        assert seq < first
        # sequential: overhead + transfer only
        assert seq == pytest.approx(1e-3 + 4096 / (9.6 * 1024 * 1024))

    def test_seek_grows_with_distance(self):
        cfg = DiskConfig(rotation_period_s=0.0)  # deterministic
        disk = DiskModel(cfg, seed=1)
        disk.service_time(1, 0, 4096)
        near = disk.service_time(1, 1024 * 1024, 4096)
        disk2 = DiskModel(cfg, seed=1)
        disk2.service_time(1, 0, 4096)
        far = disk2.service_time(1, 512 * 1024 * 1024, 4096)
        assert far > near

    def test_transfer_scales_with_size(self):
        disk = self.make(rotation_period_s=0.0)
        disk.service_time(1, 0, 4096)
        small = disk.service_time(1, 4096, 4096)  # sequential
        big = disk.service_time(1, 8192, 4096 * 100)  # also sequential
        assert big - 1e-3 == pytest.approx((small - 1e-3) * 100)

    def test_per_file_positions_independent(self):
        disk = self.make()
        disk.service_time(1, 0, 4096)
        disk.service_time(2, 0, 4096)
        # file 1 is still positioned at 4096: sequential
        seq = disk.service_time(1, 4096, 4096)
        assert seq == pytest.approx(1e-3 + 4096 / (9.6 * 1024 * 1024))

    def test_sequential_fraction_tracking(self):
        disk = self.make()
        disk.service_time(1, 0, 4096)
        disk.service_time(1, 4096, 4096)
        disk.service_time(1, 0, 4096)  # rewind: not sequential
        assert disk.requests == 3
        assert disk.sequential_fraction == pytest.approx(1 / 3)

    def test_busy_seconds_accumulates(self):
        disk = self.make()
        t = disk.service_time(1, 0, 4096)
        assert disk.busy_seconds == pytest.approx(t)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            self.make().service_time(1, 0, 0)

    def test_deterministic_with_seed(self):
        a = DiskModel(DiskConfig(), seed=7)
        b = DiskModel(DiskConfig(), seed=7)
        for off in (0, 999999, 123):
            assert a.service_time(1, off, 4096) == b.service_time(1, off, 4096)

    def test_finite_disks_interfere(self):
        # Two files interleaved: private spindles stay sequential; one
        # shared spindle seeks on every request.
        shared = DiskModel(DiskConfig(n_disks=1), seed=0)
        private = DiskModel(DiskConfig(n_disks=0), seed=0)
        base = 512 * 1024 * 1024  # file 2 lives far away
        for disk in (shared, private):
            for i in range(50):
                disk.service_time(1, i * 4096, 4096)
                disk.service_time(2, base + i * 4096, 4096)
        assert private.sequential_fraction > 0.9
        assert shared.sequential_fraction < 0.1
        assert shared.busy_seconds > private.busy_seconds

    def test_disk_hashing_stable(self):
        disk = DiskModel(DiskConfig(n_disks=4), seed=0)
        # files 1 and 5 share a spindle (1 % 4 == 5 % 4)
        disk.service_time(1, 0, 4096)
        t = disk.service_time(5, 4096, 4096)
        # sequential continuation across the *spindle* position
        assert t == pytest.approx(1e-3 + 4096 / (9.6 * 1024 * 1024))
