"""Chaos tests for the fault-injection and recovery layers.

Three invariants anchor everything else in this file:

1. same seed, same plan -> byte-identical results (the fault schedule is
   part of the simulation, not noise layered on top);
2. a zero-rate plan is *bit-identical* to running with no plan at all
   (the fault layer is free when off);
3. a crash at time T loses exactly the dirty bytes the cache was
   tracking at T.
"""

import json

import numpy as np
import pytest

from repro.sim.config import CacheConfig, FaultConfig, RecoveryConfig, SimConfig
from repro.sim.faults import FaultInjector, FaultKind, FaultPlan
from repro.sim.system import simulate
from repro.trace import flags as F
from repro.trace.array import TraceArray
from repro.util.units import KB, MB, seconds_to_ticks
from repro.workloads import generate_workload

#: The CI chaos matrix: three fixed fault seeds.
CHAOS_SEEDS = (11, 23, 47)


def make_trace(n_ios=10, *, compute_ticks=1000, length=32 * KB, pid=1, fid=1,
               write=False):
    rt = F.make_record_type(write=write, logical=True)
    clock = np.cumsum(np.full(n_ios, compute_ticks))
    return TraceArray.from_columns(
        record_type=np.full(n_ios, rt),
        file_id=np.full(n_ios, fid),
        process_id=np.full(n_ios, pid),
        operation_id=np.arange(n_ios),
        offset=np.arange(n_ios) * length,
        length=np.full(n_ios, length),
        start_time=clock,
        duration=np.zeros(n_ios),
        process_clock=clock,
    )


@pytest.fixture(scope="module")
def venus_trace():
    return generate_workload("venus", scale=0.05).trace


def _base_config(**cache_kwargs):
    kwargs = dict(size_bytes=16 * MB)
    kwargs.update(cache_kwargs)
    return SimConfig(cache=CacheConfig(**kwargs))


class TestInjector:
    def test_zero_rate_draws_nothing(self):
        inj = FaultInjector(FaultConfig(), seed=7)
        assert not inj.active
        state = inj._rng.bit_generator.state
        for _ in range(100):
            assert inj.decide().kind is FaultKind.OK
        assert inj._rng.bit_generator.state == state

    def test_rates_partition_decisions(self):
        inj = FaultInjector(
            FaultConfig(error_rate=0.3, slow_rate=0.3, slow_factor=4.0), seed=7
        )
        kinds = [inj.decide().kind for _ in range(2000)]
        errors = kinds.count(FaultKind.ERROR) / len(kinds)
        slows = kinds.count(FaultKind.SLOW) / len(kinds)
        assert errors == pytest.approx(0.3, abs=0.05)
        assert slows == pytest.approx(0.3, abs=0.05)

    def test_config_seed_overrides_simulation_seed(self):
        cfg = FaultConfig(error_rate=0.5, seed=99)
        a = [FaultInjector(cfg, seed=1).decide().kind for _ in range(50)]
        b = [FaultInjector(cfg, seed=2).decide().kind for _ in range(50)]
        assert a == b


class TestDeterminism:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_same_seed_same_digest(self, venus_trace, seed):
        plan = FaultPlan(faults=FaultConfig(error_rate=0.05, slow_rate=0.05,
                                            seed=seed))
        config = plan.apply(_base_config())
        a = simulate([venus_trace], config)
        b = simulate([venus_trace], config)
        assert a.faults.injected_errors > 0
        assert a.digest() == b.digest()

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_different_seeds_differ(self, venus_trace, seed):
        base = _base_config()
        r1 = simulate(
            [venus_trace],
            FaultPlan(faults=FaultConfig(error_rate=0.1, seed=seed)).apply(base),
        )
        r2 = simulate(
            [venus_trace],
            FaultPlan(
                faults=FaultConfig(error_rate=0.1, seed=seed + 1000)
            ).apply(base),
        )
        assert r1.digest() != r2.digest()

    def test_zero_rate_plan_bit_identical_to_no_plan(self, venus_trace):
        base = _base_config()
        baseline = simulate([venus_trace], base)
        zeroed = simulate([venus_trace], FaultPlan().apply(base))
        assert not zeroed.faults.any_faults
        assert zeroed.digest() == baseline.digest()

    def test_zero_rate_identical_under_ssd_and_policies(self, venus_trace):
        from repro.sim.config import ssd_cache

        for config in (
            SimConfig(cache=ssd_cache(16 * MB)),
            _base_config(write_behind=False),
            _base_config(read_ahead=False),
            _base_config(flush_delay_s=2.0),
        ):
            baseline = simulate([venus_trace], config)
            zeroed = simulate([venus_trace], FaultPlan().apply(config))
            assert zeroed.digest() == baseline.digest()


class TestCrash:
    def test_crash_loses_exactly_tracked_dirty_bytes(self):
        # Ten 32 KB writes, flush delay far beyond the run: every written
        # block is still DIRTY when the machine dies, so the crash loses
        # exactly those bytes -- no more, no less.
        trace = make_trace(10, write=True, compute_ticks=1000)
        config = _base_config(flush_delay_s=1000.0).with_faults(crash_at_s=5.0)
        r = simulate([trace], config)
        assert r.faults.crashed
        assert r.faults.crash_time_s == 5.0
        assert r.faults.lost_bytes == 10 * 32 * KB
        assert r.wall_seconds == 5.0
        assert r.completion_seconds == 5.0

    def test_crash_after_flushes_loses_nothing(self):
        # Immediate write-behind: flushes complete long before the crash.
        trace = make_trace(5, write=True, compute_ticks=1000)
        config = _base_config().with_faults(crash_at_s=100.0)
        r = simulate([trace], config)
        # The run drains naturally before T: no crash happens at all.
        assert not r.faults.crashed
        assert r.faults.lost_bytes == 0

    def test_crash_mid_run_loses_partial(self):
        # Writes at ~1 s intervals, 3 s flush delay, crash at 4.5 s:
        # flushes fired for early writes, later ones still dirty.
        trace = make_trace(8, write=True,
                           compute_ticks=seconds_to_ticks(1.0))
        config = _base_config(flush_delay_s=3.0).with_faults(crash_at_s=4.5)
        r = simulate([trace], config)
        assert r.faults.crashed
        assert 0 < r.faults.lost_bytes < 8 * 32 * KB
        assert r.faults.lost_bytes % (4 * KB) == 0  # whole blocks

    def test_crashed_processes_report_unfinished(self):
        trace = make_trace(10, write=True,
                           compute_ticks=seconds_to_ticks(10.0))
        config = _base_config().with_faults(crash_at_s=5.0)
        r = simulate([trace], config)
        assert r.faults.crashed
        assert not r.processes[1].finished


class TestDegradedMode:
    def test_ssd_failure_reroutes_requests(self, venus_trace):
        config = _base_config().with_faults(ssd_fail_at_s=5.0)
        r = simulate([venus_trace], config)
        assert r.faults.degraded_at_s == 5.0
        assert r.faults.degraded_requests > 0
        assert r.processes[1].finished  # the run survives the failure

    def test_degradation_costs_utilization(self, venus_trace):
        healthy = simulate([venus_trace], _base_config())
        degraded = simulate(
            [venus_trace], _base_config().with_faults(ssd_fail_at_s=2.0)
        )
        # Without the cache every request pays full disk latency.
        assert degraded.completion_seconds > healthy.completion_seconds

    def test_dirty_blocks_lost_with_the_device(self):
        trace = make_trace(6, write=True, compute_ticks=1000)
        config = _base_config(flush_delay_s=1000.0).with_faults(
            ssd_fail_at_s=5.0
        )
        r = simulate([trace], config)
        assert r.faults.degraded_at_s == 5.0
        assert r.faults.lost_bytes == 6 * 32 * KB
        assert r.processes[1].finished


class TestRecoveryOutcomes:
    def test_errors_recovered_by_retries(self, venus_trace):
        config = _base_config().with_faults(error_rate=0.05).with_recovery(
            max_retries=8
        )
        r = simulate([venus_trace], config)
        assert r.faults.injected_errors > 0
        assert r.faults.retries > 0
        assert r.faults.recovered > 0
        # With 8 retries at a 5% error rate, effectively nothing fails.
        assert r.faults.failed_reads == 0
        assert r.faults.failed_writes == 0

    def test_no_retries_means_failures(self, venus_trace):
        config = _base_config().with_faults(error_rate=0.2).with_recovery(
            max_retries=0
        )
        r = simulate([venus_trace], config)
        assert r.faults.retries == 0
        assert r.faults.failed_reads + r.faults.failed_writes > 0
        assert r.goodput_bytes < r.cache.read_bytes + r.cache.write_bytes

    def test_slowdowns_stretch_the_run(self, venus_trace):
        base = _base_config(read_ahead=False, write_behind=False)
        healthy = simulate([venus_trace], base)
        slowed = simulate(
            [venus_trace],
            base.with_faults(slow_rate=0.3, slow_factor=16.0),
        )
        assert slowed.faults.injected_slowdowns > 0
        assert slowed.completion_seconds > healthy.completion_seconds
        assert slowed.disk_busy_seconds > healthy.disk_busy_seconds

    def test_timeouts_abandon_glacial_requests(self, venus_trace):
        config = _base_config().with_faults(
            slow_rate=0.3, slow_factor=50.0
        ).with_recovery(timeout_s=0.05, max_retries=1)
        r = simulate([venus_trace], config)
        assert r.faults.timeouts > 0


class TestFaultPlanSerialization:
    def test_round_trip(self, tmp_path):
        plan = FaultPlan(
            faults=FaultConfig(error_rate=0.1, slow_rate=0.05, crash_at_s=9.5),
            recovery=RecoveryConfig(max_retries=5, timeout_s=0.5),
        )
        path = tmp_path / "plan.json"
        plan.dump(path)
        assert FaultPlan.load(path) == plan

    def test_example_plan_loads(self):
        from pathlib import Path

        example = Path(__file__).resolve().parents[2] / "examples" / "fault_plan.json"
        plan = FaultPlan.load(example)
        assert plan.faults.error_rate > 0
        assert plan.faults.injects

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json{")
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.load(path)

    def test_load_rejects_unknown_sections(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"fautls": {}}))
        with pytest.raises(ValueError, match="unknown fault-plan sections"):
            FaultPlan.load(path)

    def test_spec_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultPlan.from_spec("error=0.1,typo_key=3")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(error_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(error_rate=0.7, slow_rate=0.7)
        with pytest.raises(ValueError):
            RecoveryConfig(max_retries=-1)
        with pytest.raises(ValueError):
            # jitter above factor-1 would break backoff monotonicity
            RecoveryConfig(backoff_factor=1.5, backoff_jitter=0.9)
