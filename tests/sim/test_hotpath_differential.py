"""Differential guard: the run-coalesced cache is bit-identical to legacy.

The hot-path overhaul rewrote the buffer cache around columnar frame
tables and extent-level bookkeeping (:mod:`repro.sim.cache`) while
keeping the per-block reference implementation
(:mod:`repro.sim.cache_legacy`) selectable via
``SimulatedSystem(..., cache_impl="legacy")``.  Equivalence is not
approximate: every digest -- which hashes the full scalar result set and
the binned rate series -- must match across every cache policy, on
multi-process and async workloads, and under an active fault plan where
failed reads abandon frames and failed flushes re-queue dirty blocks.

These tests are the contract that lets the legacy implementation be
deleted eventually: any behavioral drift in the fast path shows up here
as a digest mismatch long before it would corrupt a golden figure.
"""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.sim.config import CacheConfig, SimConfig, ssd_cache
from repro.sim.faults import FaultPlan
from repro.sim.procmodel import relabel_copies
from repro.sim.system import SimulatedSystem
from repro.util.rng import DEFAULT_SEED
from repro.util.units import KB, MB
from repro.workloads.base import generate_workload

CONFIGS = {
    "memory": SimConfig(cache=CacheConfig(size_bytes=8 * MB)),
    "ssd": SimConfig(cache=ssd_cache(8 * MB)),
    "no-readahead": SimConfig(
        cache=CacheConfig(size_bytes=8 * MB, read_ahead=False)
    ),
    "write-through": SimConfig(
        cache=CacheConfig(size_bytes=8 * MB, write_behind=False)
    ),
    "raw": SimConfig(
        cache=CacheConfig(
            size_bytes=8 * MB, read_ahead=False, write_behind=False
        )
    ),
    "delayed-flush-8k": SimConfig(
        cache=CacheConfig(
            size_bytes=4 * MB, block_bytes=8 * KB, flush_delay_s=2.0
        )
    ),
    "capped-per-process": SimConfig(
        cache=CacheConfig(size_bytes=8 * MB, max_blocks_per_process=256)
    ),
    "tiny-cache-bypass": SimConfig(cache=CacheConfig(size_bytes=256 * KB)),
    "two-cpus": SimConfig(cache=CacheConfig(size_bytes=8 * MB)).with_scheduler(
        n_cpus=2
    ),
}


@pytest.fixture(scope="module")
def venus_pair():
    venus = generate_workload("venus", scale=0.05, seed=DEFAULT_SEED)
    return relabel_copies(venus.trace, 2)


@pytest.fixture(scope="module")
def les_trace():
    return [generate_workload("les", scale=0.05, seed=DEFAULT_SEED).trace]


def _digest(traces, config, impl):
    return SimulatedSystem(traces, config, cache_impl=impl).run().digest()


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_fast_cache_matches_legacy_across_policies(venus_pair, name):
    config = CONFIGS[name]
    assert _digest(venus_pair, config, "fast") == _digest(
        venus_pair, config, "legacy"
    )


def test_fast_cache_matches_legacy_on_async_workload(les_trace):
    # les issues asynchronous writes (fire-and-forget) -- the path where
    # completions race the issuing process instead of unblocking it.
    config = SimConfig(cache=CacheConfig(size_bytes=4 * MB))
    assert _digest(les_trace, config, "fast") == _digest(
        les_trace, config, "legacy"
    )


def test_fast_cache_matches_legacy_under_fault_plan(venus_pair):
    # Injected errors and slowdowns drive the failure paths: read runs
    # abandoned mid-flight, flush runs re-queued with gaps, retries with
    # seeded backoff.  The two implementations must agree event for
    # event even there.
    plan = FaultPlan.from_spec("error=0.05,slow=0.1,seed=23,max_retries=4")
    config = plan.apply(SimConfig(cache=ssd_cache(8 * MB)))
    fast = SimulatedSystem(venus_pair, config, cache_impl="fast").run()
    legacy = SimulatedSystem(venus_pair, config, cache_impl="legacy").run()
    assert fast.faults.injected_errors > 0  # the plan actually fired
    assert fast.digest() == legacy.digest()


def test_fast_cache_matches_legacy_through_ssd_failure(venus_pair):
    # A timed device failure flips the cache into degraded bypass mode
    # mid-run; both implementations must drop the same frames at the cut.
    plan = FaultPlan.from_spec("ssd_fail_at=20")
    config = plan.apply(SimConfig(cache=ssd_cache(8 * MB)))
    assert _digest(venus_pair, config, "fast") == _digest(
        venus_pair, config, "legacy"
    )


def test_unknown_cache_impl_rejected(venus_pair):
    from repro.util.errors import SimulationError

    with pytest.raises(SimulationError, match="unknown cache_impl"):
        SimulatedSystem(venus_pair, CONFIGS["memory"], cache_impl="turbo")


class _CountingRegistry(MetricsRegistry):
    """Disabled registry that counts instrument resolutions."""

    def __init__(self):
        super().__init__(enabled=False)
        self.lookups = 0

    def counter(self, name):
        self.lookups += 1
        return super().counter(name)

    def gauge(self, name):
        self.lookups += 1
        return super().gauge(name)

    def histogram(self, name):
        self.lookups += 1
        return super().histogram(name)


def test_disabled_obs_makes_zero_registry_calls_per_event(venus_pair):
    # Instruments are resolved once at wiring time; with observability
    # disabled, running millions of events must never go back to the
    # registry -- the null-object fast path has to be allocation- and
    # lookup-free.
    reg = _CountingRegistry()
    system = SimulatedSystem(venus_pair, CONFIGS["memory"], obs=reg)
    wired = reg.lookups
    assert wired > 0  # construction does resolve instruments
    result = system.run()
    assert result.events_run > 10_000  # a real run, not a trivial one
    assert reg.lookups == wired
