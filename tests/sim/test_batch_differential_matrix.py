"""Seed-matrix differential: batch kernel == event engine, every policy.

The run-level fast path (``REPRO_ENGINE_IMPL=batch``) is only allowed to
exist because its digests are bit-identical to the event engine's.  This
matrix crosses seeded fault plans with every cache policy knob --
read-ahead, write-behind, delayed flush, per-process buffer caps, SSD
hit penalties, both cache implementations -- so a divergence names the
exact (policy, fault, seed) cell that broke.

Marked ``batch_differential`` so CI can run the matrix as its own job
(``pytest -m batch_differential``); it also runs in the default tier-1
sweep.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import CacheConfig, SimConfig, ssd_cache
from repro.sim.faults import FaultPlan
from repro.sim.procmodel import relabel_copies
from repro.sim.system import SimulatedSystem
from repro.trace import flags as F
from repro.trace.array import TraceArray
from repro.util.rng import DEFAULT_SEED
from repro.util.units import KB, MB
from repro.workloads.base import generate_workload
from tests.harness import assert_equivalent

pytestmark = pytest.mark.batch_differential

SEEDS = (11, 23, 47)

# Every cache-policy knob the config exposes, each exercised away from
# its default.  Geometry is kept small so misses and evictions happen.
POLICIES = {
    "default": CacheConfig(size_bytes=8 * MB),
    "no-read-ahead": CacheConfig(size_bytes=8 * MB, read_ahead=False),
    "no-write-behind": CacheConfig(size_bytes=8 * MB, write_behind=False),
    "synchronous": CacheConfig(
        size_bytes=8 * MB, read_ahead=False, write_behind=False
    ),
    "delayed-flush": CacheConfig(size_bytes=8 * MB, flush_delay_s=0.5),
    "per-process-cap": CacheConfig(
        size_bytes=8 * MB, max_blocks_per_process=64
    ),
    "deep-read-ahead": CacheConfig(size_bytes=8 * MB, read_ahead_depth=8),
    "small-blocks": CacheConfig(size_bytes=4 * MB, block_bytes=8 * KB),
    "ssd": ssd_cache(8 * MB),
}

FAULT_SPECS = {
    "clean": None,
    "errors": "error=0.05,slow=0.1,seed={seed},max_retries=4",
    "exhaustion": "error=0.2,seed={seed},max_retries=1",
}


@pytest.fixture(scope="module")
def venus_pair():
    venus = generate_workload("venus", scale=0.05, seed=DEFAULT_SEED)
    return relabel_copies(venus.trace, 2)


def _config(policy: str, fault: str, seed: int) -> SimConfig:
    config = SimConfig(cache=POLICIES[policy])
    spec = FAULT_SPECS[fault]
    if spec is None:
        return config
    return FaultPlan.from_spec(spec.format(seed=seed)).apply(config)


@pytest.mark.parametrize("policy", sorted(POLICIES))
@pytest.mark.parametrize("cache_impl", ["fast", "legacy"])
def test_batch_matches_event_per_policy(venus_pair, policy, cache_impl):
    assert_equivalent(
        venus_pair,
        _config(policy, "clean", 0),
        cache_impl=cache_impl,
        label=f"{policy}/{cache_impl}",
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("fault", ["errors", "exhaustion"])
@pytest.mark.parametrize("policy", ["synchronous", "delayed-flush", "ssd"])
def test_batch_matches_event_per_policy_under_faults(
    venus_pair, policy, fault, seed
):
    # Fault injection draws randomness at device submits; a policy that
    # changes when submits happen (no write-behind, delayed flush, SSD
    # retry paths) is exactly where a kernel fast path could skew the
    # RNG stream.
    assert_equivalent(
        venus_pair,
        _config(policy, fault, seed),
        label=f"{policy}/{fault}-seed-{seed}",
    )


# ---------------------------------------------------------------------------
# Write fast path: policy x fault x cache-impl, counter-asserted engagement
# ---------------------------------------------------------------------------

# The three write disciplines the fast write path must navigate:
# write-behind (absorbable), write-through (a policy bailout point) and
# delayed flush (absorbable, but with deadline scheduling delegated).
WRITE_POLICIES = {
    "write-behind": "default",
    "write-through": "no-write-behind",
    "delayed-flush": "delayed-flush",
}


@pytest.mark.parametrize("cache_impl", ["fast", "legacy"])
@pytest.mark.parametrize("fault", sorted(FAULT_SPECS))
@pytest.mark.parametrize("write_policy", sorted(WRITE_POLICIES))
def test_write_fast_path_matrix(venus_pair, write_policy, fault, cache_impl):
    """Digest equality is necessary but not sufficient: the cell must
    also prove the write fast path *engaged* (or was correctly refused).

    ``fast_writes > 0`` is asserted exactly where absorption is legal:
    the columnar cache with write-behind or delayed flush, including
    under fault plans (absorbed writes delegate flush submission, so the
    injector's RNG stream is untouched).  Write-through and the legacy
    cache must absorb nothing -- a nonzero counter there would mean the
    kernel dirtied frames behind a policy's back.
    """
    outcome = assert_equivalent(
        venus_pair,
        _config(WRITE_POLICIES[write_policy], fault, SEEDS[0]),
        cache_impl=cache_impl,
        label=f"write-{write_policy}/{fault}/{cache_impl}",
        counters=True,
    )
    batch = outcome.counters["batch"]
    fast_writes = batch.get("sim.batch.fast_writes", 0)
    if cache_impl == "fast" and write_policy != "write-through":
        assert fast_writes > 0, batch
    else:
        assert fast_writes == 0, batch
        assert batch.get("sim.batch.write_bailouts", 0) > 0, batch


@pytest.fixture(scope="module")
def forma_solo():
    # forma is the run-structured workload in the suite (sequential read
    # runs up to 92 records); venus alternates read/write per record, so
    # its row-level read runs have length 1 and whole-run commit can
    # never engage there.
    return [generate_workload("forma", scale=0.05, seed=DEFAULT_SEED).trace]


def test_bulk_commit_engages_on_run_structured_workload(forma_solo):
    """The vectorized whole-run commit must fire and stay bit-identical.

    At 32 MB the forma working set goes clean-resident for long read
    runs, which is the whole-run commit's domain; the counter assertion
    keeps this cell from silently degenerating into scalar fast reads.
    """
    outcome = assert_equivalent(
        forma_solo,
        SimConfig(cache=CacheConfig(size_bytes=32 * MB)),
        label="forma-bulk-commit",
        counters=True,
    )
    batch = outcome.counters["batch"]
    assert batch.get("sim.batch.runs_bulk_committed", 0) > 0, batch
    assert batch.get("sim.batch.fast_writes", 0) > 0, batch


# ---------------------------------------------------------------------------
# Fast-write absorption must not perturb flush-queue trajectories
# ---------------------------------------------------------------------------
BLOCK = 4 * KB


def _run_with_flush_trajectory(traces, config, engine_impl):
    """Run one engine, recording every ``outstanding_flushes`` transition.

    The digest only sees the flush queue through its side effects; this
    records the gauge itself -- every (sim-time, value) step -- by
    swapping the live cache into a recording subclass, so a fast path
    that merely *reorders* flush accounting (same totals, different
    trajectory) is still caught.
    """
    system = SimulatedSystem(
        traces, config, cache_impl="fast", engine_impl=engine_impl
    )
    cache = system.cache
    trajectory: list[tuple[float, int]] = []

    class _Recording(type(cache)):
        @property
        def outstanding_flushes(self):
            return self._of_value

        @outstanding_flushes.setter
        def outstanding_flushes(self, value):
            self._of_value = value
            trajectory.append((self.engine.now, value))

    cache._of_value = cache.__dict__.pop("outstanding_flushes")
    cache.__class__ = _Recording
    result = system.run()
    return result, trajectory


def _sequential_write_trace(
    n_records=64, stride_blocks=4, process_id=1
) -> TraceArray:
    rt = F.TRACE_LOGICAL_RECORD | F.TRACE_WRITE
    length = stride_blocks * BLOCK
    return TraceArray.from_columns(
        record_type=[rt] * n_records,
        file_id=[1] * n_records,
        process_id=[process_id] * n_records,
        operation_id=list(range(n_records)),
        offset=[i * length for i in range(n_records)],
        length=[length] * n_records,
        process_clock=np.arange(n_records) * 1000,
    )


def test_fast_writes_engage_and_preserve_flush_trajectory():
    """Deterministic anchor: a long sequential write-behind run absorbs
    nearly every record, and the flush-queue trajectory is unchanged."""
    traces = [_sequential_write_trace()]
    config = SimConfig(cache=CacheConfig(size_bytes=8 * MB))
    from repro.obs.registry import MetricsRegistry

    obs = MetricsRegistry(enabled=True)
    result = SimulatedSystem(
        traces, config, cache_impl="fast", engine_impl="batch", obs=obs
    ).run()
    assert obs.counters().get("sim.batch.fast_writes", 0) > 0

    r_event, t_event = _run_with_flush_trajectory(traces, config, "event")
    r_batch, t_batch = _run_with_flush_trajectory(traces, config, "batch")
    assert r_event.digest() == r_batch.digest() == result.digest()
    assert t_batch == t_event
    assert t_event, "workload never flushed; trajectory check is vacuous"


@st.composite
def write_heavy_trace(draw) -> TraceArray:
    """Sequential write runs with occasional reads and jumps -- the
    write fast path's domain plus its bail-out edges."""
    file_ids: list[int] = []
    offsets: list[int] = []
    lengths: list[int] = []
    types: list[int] = []
    deltas: list[int] = []
    for _ in range(draw(st.integers(1, 5))):
        fid = draw(st.integers(0, 2))
        run_len = draw(st.integers(1, 12))
        length = draw(st.integers(1, 8)) * BLOCK
        offset = draw(st.integers(0, 200)) * BLOCK
        rt = F.TRACE_LOGICAL_RECORD
        if draw(st.integers(0, 4)) > 0:  # write-heavy: 80% write runs
            rt |= F.TRACE_WRITE
        for _ in range(run_len):
            file_ids.append(fid)
            offsets.append(offset)
            lengths.append(length)
            types.append(rt)
            deltas.append(draw(st.integers(0, 2000)))
            offset += length
    n = len(file_ids)
    return TraceArray.from_columns(
        record_type=types,
        file_id=file_ids,
        process_id=[1] * n,
        operation_id=list(range(n)),
        offset=offsets,
        length=lengths,
        process_clock=np.cumsum(deltas),
    )


@settings(max_examples=30, deadline=None)
@given(
    trace=write_heavy_trace(),
    size_bytes=st.sampled_from([256 * KB, 1 * MB, 4 * MB]),
    flush_delay_s=st.sampled_from([0.0, 0.5]),
)
def test_fast_write_absorption_never_changes_flush_trajectory(
    trace, size_bytes, flush_delay_s
):
    """Property: for any write-heavy workload under any write-behind
    geometry, the batch kernel's flush-queue trajectory -- every
    (time, outstanding_flushes) transition -- equals the event
    engine's, and the digests agree."""
    config = SimConfig(
        cache=CacheConfig(size_bytes=size_bytes, flush_delay_s=flush_delay_s)
    )
    r_event, t_event = _run_with_flush_trajectory([trace], config, "event")
    r_batch, t_batch = _run_with_flush_trajectory([trace], config, "batch")
    assert r_event.digest() == r_batch.digest()
    assert t_batch == t_event
