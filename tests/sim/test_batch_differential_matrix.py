"""Seed-matrix differential: batch kernel == event engine, every policy.

The run-level fast path (``REPRO_ENGINE_IMPL=batch``) is only allowed to
exist because its digests are bit-identical to the event engine's.  This
matrix crosses seeded fault plans with every cache policy knob --
read-ahead, write-behind, delayed flush, per-process buffer caps, SSD
hit penalties, both cache implementations -- so a divergence names the
exact (policy, fault, seed) cell that broke.

Marked ``batch_differential`` so CI can run the matrix as its own job
(``pytest -m batch_differential``); it also runs in the default tier-1
sweep.
"""

import pytest

from repro.sim.config import CacheConfig, SimConfig, ssd_cache
from repro.sim.faults import FaultPlan
from repro.sim.procmodel import relabel_copies
from repro.util.rng import DEFAULT_SEED
from repro.util.units import KB, MB
from repro.workloads.base import generate_workload
from tests.harness import assert_equivalent

pytestmark = pytest.mark.batch_differential

SEEDS = (11, 23, 47)

# Every cache-policy knob the config exposes, each exercised away from
# its default.  Geometry is kept small so misses and evictions happen.
POLICIES = {
    "default": CacheConfig(size_bytes=8 * MB),
    "no-read-ahead": CacheConfig(size_bytes=8 * MB, read_ahead=False),
    "no-write-behind": CacheConfig(size_bytes=8 * MB, write_behind=False),
    "synchronous": CacheConfig(
        size_bytes=8 * MB, read_ahead=False, write_behind=False
    ),
    "delayed-flush": CacheConfig(size_bytes=8 * MB, flush_delay_s=0.5),
    "per-process-cap": CacheConfig(
        size_bytes=8 * MB, max_blocks_per_process=64
    ),
    "deep-read-ahead": CacheConfig(size_bytes=8 * MB, read_ahead_depth=8),
    "small-blocks": CacheConfig(size_bytes=4 * MB, block_bytes=8 * KB),
    "ssd": ssd_cache(8 * MB),
}

FAULT_SPECS = {
    "clean": None,
    "errors": "error=0.05,slow=0.1,seed={seed},max_retries=4",
    "exhaustion": "error=0.2,seed={seed},max_retries=1",
}


@pytest.fixture(scope="module")
def venus_pair():
    venus = generate_workload("venus", scale=0.05, seed=DEFAULT_SEED)
    return relabel_copies(venus.trace, 2)


def _config(policy: str, fault: str, seed: int) -> SimConfig:
    config = SimConfig(cache=POLICIES[policy])
    spec = FAULT_SPECS[fault]
    if spec is None:
        return config
    return FaultPlan.from_spec(spec.format(seed=seed)).apply(config)


@pytest.mark.parametrize("policy", sorted(POLICIES))
@pytest.mark.parametrize("cache_impl", ["fast", "legacy"])
def test_batch_matches_event_per_policy(venus_pair, policy, cache_impl):
    assert_equivalent(
        venus_pair,
        _config(policy, "clean", 0),
        cache_impl=cache_impl,
        label=f"{policy}/{cache_impl}",
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("fault", ["errors", "exhaustion"])
@pytest.mark.parametrize("policy", ["synchronous", "delayed-flush", "ssd"])
def test_batch_matches_event_per_policy_under_faults(
    venus_pair, policy, fault, seed
):
    # Fault injection draws randomness at device submits; a policy that
    # changes when submits happen (no write-behind, delayed flush, SSD
    # retry paths) is exactly where a kernel fast path could skew the
    # RNG stream.
    assert_equivalent(
        venus_pair,
        _config(policy, fault, seed),
        label=f"{policy}/{fault}-seed-{seed}",
    )
